//! DVFS operating points and the voltage-slew transition model.

use gpm_types::{Hertz, Micros, PowerMode, Volts};
use serde::{Deserialize, Serialize};

/// The linear-DVFS scenario of Section 4: nominal operating point, per-mode
/// voltage/frequency scaling, and the regulator slew rate that determines
/// mode-transition overheads (Table 5).
///
/// # Examples
///
/// ```
/// use gpm_power::DvfsParams;
/// use gpm_types::PowerMode;
///
/// let dvfs = DvfsParams::paper();
/// assert!((dvfs.voltage(PowerMode::Eff1).value() - 1.235).abs() < 1e-9);
/// assert!((dvfs.frequency(PowerMode::Eff2).as_ghz() - 0.85).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsParams {
    /// Nominal (Turbo) supply voltage. The paper uses 1.300 V.
    pub nominal_vdd: Volts,
    /// Nominal (Turbo) clock frequency. 1 GHz matches the paper's
    /// granularity arithmetic (100K cycles ≈ 100 µs).
    pub nominal_frequency: Hertz,
    /// Regulator slew rate in volts per microsecond. The paper assumes a
    /// realistic 10 mV/µs.
    pub slew_rate_v_per_us: f64,
}

impl DvfsParams {
    /// The paper's parameters: 1.300 V, 1 GHz, 10 mV/µs.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            nominal_vdd: Volts::new(1.300),
            nominal_frequency: Hertz::from_ghz(1.0),
            slew_rate_v_per_us: 0.010,
        }
    }

    /// Supply voltage of `mode` (1.300, 1.235, 1.105 V for the paper's
    /// parameters).
    #[must_use]
    pub fn voltage(&self, mode: PowerMode) -> Volts {
        self.nominal_vdd * mode.voltage_scale()
    }

    /// Clock frequency of `mode`.
    #[must_use]
    pub fn frequency(&self, mode: PowerMode) -> Hertz {
        self.nominal_frequency * mode.frequency_scale()
    }

    /// Time for the regulator to slew between two modes' voltages
    /// (Table 5: 6.5 µs, 13 µs, 19.5 µs; zero for a self-transition).
    #[must_use]
    pub fn transition_time(&self, from: PowerMode, to: PowerMode) -> Micros {
        let delta_v = from.voltage_distance(to) * self.nominal_vdd.value();
        Micros::new(delta_v / self.slew_rate_v_per_us)
    }

    /// The BIPS de-rating factor for an explore interval that starts with a
    /// `from → to` transition: `explore / (explore + t_transition)`.
    ///
    /// With the paper's 500 µs explore time these are the 500/507, 500/513
    /// and 500/520 factors of Section 5.5 (the paper rounds the transition
    /// times up to 7, 13 and 20 µs; we keep the exact 6.5/13/19.5 values).
    #[must_use]
    pub fn bips_transition_factor(&self, from: PowerMode, to: PowerMode, explore: Micros) -> f64 {
        let t = self.transition_time(from, to);
        explore.value() / (explore.value() + t.value())
    }

    /// The full 3×3 transition-time table (Table 5 plus zero diagonal).
    #[must_use]
    pub fn transition_table(&self) -> TransitionTable {
        let mut times = [[Micros::ZERO; PowerMode::COUNT]; PowerMode::COUNT];
        for from in PowerMode::ALL {
            for to in PowerMode::ALL {
                times[from.index()][to.index()] = self.transition_time(from, to);
            }
        }
        TransitionTable { times }
    }

    /// First-order estimates of each mode's power saving and performance
    /// degradation relative to Turbo (the paper's Table 4): cubic power,
    /// linear performance. The performance figures are upper bounds — real
    /// memory-bound workloads degrade less.
    #[must_use]
    pub fn estimated_tradeoffs(&self) -> [ModeEstimate; PowerMode::COUNT] {
        [PowerMode::Turbo, PowerMode::Eff1, PowerMode::Eff2].map(|mode| ModeEstimate {
            mode,
            power_saving: 1.0 - mode.power_scale(),
            perf_degradation_bound: 1.0 - mode.bips_scale_bound(),
        })
    }
}

impl Default for DvfsParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Precomputed mode-to-mode transition times (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionTable {
    times: [[Micros; PowerMode::COUNT]; PowerMode::COUNT],
}

impl TransitionTable {
    /// Transition time between two modes.
    #[must_use]
    pub fn time(&self, from: PowerMode, to: PowerMode) -> Micros {
        self.times[from.index()][to.index()]
    }

    /// The largest entry of the table — the worst-case GALS stall.
    #[must_use]
    pub fn worst_case(&self) -> Micros {
        self.times
            .iter()
            .flatten()
            .copied()
            .fold(Micros::ZERO, Micros::max)
    }
}

/// One row of the paper's Table 4: analytic power/performance bounds for a
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeEstimate {
    /// The mode described.
    pub mode: PowerMode,
    /// Estimated power saving vs Turbo (fraction, cubic scaling).
    pub power_saving: f64,
    /// Upper-bound performance degradation vs Turbo (fraction, linear
    /// scaling).
    pub perf_degradation_bound: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_voltages() {
        let d = DvfsParams::paper();
        assert!((d.voltage(PowerMode::Turbo).value() - 1.300).abs() < 1e-12);
        assert!((d.voltage(PowerMode::Eff1).value() - 1.235).abs() < 1e-12);
        assert!((d.voltage(PowerMode::Eff2).value() - 1.105).abs() < 1e-12);
    }

    #[test]
    fn paper_frequencies() {
        let d = DvfsParams::paper();
        assert_eq!(d.frequency(PowerMode::Turbo).as_ghz(), 1.0);
        assert!((d.frequency(PowerMode::Eff1).as_ghz() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn table5_transition_times() {
        let d = DvfsParams::paper();
        let t = |a, b| d.transition_time(a, b).value();
        assert!((t(PowerMode::Turbo, PowerMode::Eff1) - 6.5).abs() < 1e-9);
        assert!((t(PowerMode::Eff1, PowerMode::Eff2) - 13.0).abs() < 1e-9);
        assert!((t(PowerMode::Turbo, PowerMode::Eff2) - 19.5).abs() < 1e-9);
        // Symmetric and zero diagonal.
        assert_eq!(
            t(PowerMode::Eff1, PowerMode::Turbo),
            t(PowerMode::Turbo, PowerMode::Eff1)
        );
        assert_eq!(t(PowerMode::Turbo, PowerMode::Turbo), 0.0);
    }

    #[test]
    fn transition_factors_match_section_5_5() {
        let d = DvfsParams::paper();
        let explore = Micros::new(500.0);
        let f = d.bips_transition_factor(PowerMode::Turbo, PowerMode::Eff2, explore);
        assert!((f - 500.0 / 519.5).abs() < 1e-9);
        let same = d.bips_transition_factor(PowerMode::Eff1, PowerMode::Eff1, explore);
        assert_eq!(same, 1.0);
    }

    #[test]
    fn transition_overheads_are_1_to_4_percent_of_explore() {
        // Section 5.1: "relatively low overheads ranging from 1 to 4%".
        let d = DvfsParams::paper();
        let explore = 500.0;
        for from in PowerMode::ALL {
            for to in PowerMode::ALL {
                if from == to {
                    continue;
                }
                let frac = d.transition_time(from, to).value() / explore;
                assert!((0.01..=0.04).contains(&frac), "{from}->{to}: {frac}");
            }
        }
    }

    #[test]
    fn transition_table_and_worst_case() {
        let table = DvfsParams::paper().transition_table();
        assert!((table.worst_case().value() - 19.5).abs() < 1e-9);
        assert_eq!(
            table.time(PowerMode::Eff2, PowerMode::Turbo),
            DvfsParams::paper().transition_time(PowerMode::Eff2, PowerMode::Turbo)
        );
    }

    #[test]
    fn table4_estimates() {
        let est = DvfsParams::paper().estimated_tradeoffs();
        assert_eq!(est[0].mode, PowerMode::Turbo);
        assert_eq!(est[0].power_saving, 0.0);
        assert!((est[1].power_saving - 0.142_625).abs() < 1e-6);
        assert!((est[1].perf_degradation_bound - 0.05).abs() < 1e-12);
        assert!((est[2].power_saving - 0.385_875).abs() < 1e-6);
        assert!((est[2].perf_degradation_bound - 0.15).abs() < 1e-12);
    }

    #[test]
    fn estimates_meet_3_to_1_target() {
        // Table 3's design target: ΔPower : ΔPerf ≈ 3 : 1.
        for est in DvfsParams::paper().estimated_tradeoffs() {
            if est.mode == PowerMode::Turbo {
                continue;
            }
            let ratio = est.power_saving / est.perf_degradation_bound;
            assert!(ratio >= 2.5, "{:?} ratio {ratio}", est.mode);
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(DvfsParams::default(), DvfsParams::paper());
    }
}
