//! First-order lumped RC thermal model — an extension beyond the paper.
//!
//! The paper motivates global power management with "power and peak
//! temperature ... the key performance limiters" and its Figure 6 scenario
//! is a cooling failure, but it manages power only. This module adds the
//! minimal thermal substrate a temperature-aware policy needs: one RC node
//! per core,
//!
//! ```text
//! C·dT/dt = P − (T − T_amb)/R      ⇒      T′ = T_ss + (T − T_ss)·e^(−dt/RC)
//! ```
//!
//! integrated exactly per step (`T_ss = T_amb + P·R`), so arbitrary step
//! sizes are stable.

use gpm_types::{Micros, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of the per-core RC node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Junction-to-ambient thermal resistance per core, in K/W. With the
    /// default 1.8 K/W a 20 W core settles ≈ 36 K above ambient.
    pub resistance_k_per_w: f64,
    /// RC time constant. A few milliseconds for the silicon + spreader
    /// path local to a core.
    pub time_constant: Micros,
    /// Ambient (heatsink base) temperature, °C.
    pub ambient_c: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        Self {
            resistance_k_per_w: 1.8,
            time_constant: Micros::from_millis(5.0),
            ambient_c: 45.0,
        }
    }
}

/// Per-core junction temperatures driven by the observed core powers.
///
/// # Examples
///
/// ```
/// use gpm_power::{ThermalModel, ThermalParams};
/// use gpm_types::{Micros, Watts};
///
/// let mut t = ThermalModel::new(2, ThermalParams::default()).unwrap();
/// // A long 20 W step settles near ambient + P·R = 45 + 36 = 81 °C.
/// t.step(&[Watts::new(20.0), Watts::new(5.0)], Micros::from_millis(100.0));
/// assert!((t.temperatures()[0] - 81.0).abs() < 0.5);
/// assert!(t.temperatures()[1] < t.temperatures()[0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    params: ThermalParams,
    temps_c: Vec<f64>,
}

impl ThermalModel {
    /// Creates a model with every core at ambient.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if `cores` is zero or
    /// the parameters are non-positive.
    pub fn new(cores: usize, params: ThermalParams) -> gpm_types::Result<Self> {
        if cores == 0 {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "thermal_cores",
                reason: "need at least one core".into(),
            });
        }
        if !(params.resistance_k_per_w > 0.0 && params.time_constant.value() > 0.0) {
            return Err(gpm_types::GpmError::InvalidConfig {
                parameter: "thermal_params",
                reason: "resistance and time constant must be positive".into(),
            });
        }
        Ok(Self {
            temps_c: vec![params.ambient_c; cores],
            params,
        })
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Advances every core by `dt` under the given powers (exact
    /// exponential integration, stable for any `dt`).
    ///
    /// # Panics
    ///
    /// Panics if `powers` does not cover every core.
    pub fn step(&mut self, powers: &[Watts], dt: Micros) {
        assert_eq!(powers.len(), self.temps_c.len(), "one power per core");
        let decay = (-dt.value() / self.params.time_constant.value()).exp();
        for (temp, power) in self.temps_c.iter_mut().zip(powers) {
            let steady = self.params.ambient_c + power.value() * self.params.resistance_k_per_w;
            *temp = steady + (*temp - steady) * decay;
        }
    }

    /// Current per-core junction temperatures, °C.
    #[must_use]
    pub fn temperatures(&self) -> &[f64] {
        &self.temps_c
    }

    /// The hottest core's temperature, °C.
    #[must_use]
    pub fn hottest(&self) -> f64 {
        self.temps_c
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Steady-state temperature a core would reach at `power`.
    #[must_use]
    pub fn steady_state(&self, power: Watts) -> f64 {
        self.params.ambient_c + power.value() * self.params.resistance_k_per_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cores: usize) -> ThermalModel {
        ThermalModel::new(cores, ThermalParams::default()).unwrap()
    }

    #[test]
    fn starts_at_ambient() {
        let t = model(3);
        assert!(t.temperatures().iter().all(|&c| (c - 45.0).abs() < 1e-12));
        assert_eq!(t.hottest(), 45.0);
    }

    #[test]
    fn approaches_steady_state_exponentially() {
        let mut t = model(1);
        let p = [Watts::new(20.0)];
        // One time constant: 63.2% of the way to steady state.
        t.step(&p, Micros::from_millis(5.0));
        let target = t.steady_state(p[0]);
        let progress = (t.temperatures()[0] - 45.0) / (target - 45.0);
        assert!((progress - 0.632).abs() < 0.005, "progress {progress}");
        // Many time constants: settled.
        t.step(&p, Micros::from_millis(100.0));
        assert!((t.temperatures()[0] - target).abs() < 0.01);
    }

    #[test]
    fn cooling_follows_the_same_dynamics() {
        let mut t = model(1);
        t.step(&[Watts::new(25.0)], Micros::from_millis(100.0));
        let hot = t.temperatures()[0];
        t.step(&[Watts::ZERO], Micros::from_millis(5.0));
        let cooled = t.temperatures()[0];
        assert!(cooled < hot);
        assert!(cooled > 45.0, "cannot cool below ambient");
    }

    #[test]
    fn step_is_duration_consistent() {
        // One 10 ms step equals two 5 ms steps under constant power.
        let p = [Watts::new(15.0)];
        let mut one = model(1);
        one.step(&p, Micros::from_millis(10.0));
        let mut two = model(1);
        two.step(&p, Micros::from_millis(5.0));
        two.step(&p, Micros::from_millis(5.0));
        assert!((one.temperatures()[0] - two.temperatures()[0]).abs() < 1e-9);
    }

    #[test]
    fn per_core_independence() {
        let mut t = model(2);
        t.step(
            &[Watts::new(22.0), Watts::new(8.0)],
            Micros::from_millis(50.0),
        );
        assert!(t.temperatures()[0] > t.temperatures()[1] + 15.0);
        assert_eq!(t.hottest(), t.temperatures()[0]);
    }

    #[test]
    #[should_panic(expected = "one power per core")]
    fn power_count_checked() {
        model(2).step(&[Watts::new(1.0)], Micros::new(50.0));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ThermalModel::new(0, ThermalParams::default()).is_err());
        let bad = ThermalParams {
            resistance_k_per_w: 0.0,
            ..ThermalParams::default()
        };
        assert!(ThermalModel::new(1, bad).is_err());
    }
}
