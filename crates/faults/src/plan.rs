//! Fault plans: what goes wrong, where, and when.

use gpm_types::{GpmError, Result};
use serde::{Deserialize, Serialize};

/// Default seed for the deterministic fault RNG (noise draws).
pub const DEFAULT_SEED: u64 = 0xfa_017;

/// A half-open window of explore-interval indices `[from, to)`.
///
/// `to = None` leaves the window open-ended (the fault persists for the
/// rest of the run). Interval 0 is the manager's warm-up interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalWindow {
    /// First affected interval index.
    pub from: usize,
    /// First unaffected interval index, if the fault ever clears.
    pub to: Option<usize>,
}

impl IntervalWindow {
    /// The window covering the whole run.
    pub const ALWAYS: Self = Self { from: 0, to: None };

    /// Whether `interval` falls inside the window.
    #[inline]
    #[must_use]
    pub fn contains(&self, interval: usize) -> bool {
        interval >= self.from && self.to.is_none_or(|to| interval < to)
    }
}

/// Which cores a clause perturbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreSet {
    /// Every core of the chip.
    All,
    /// An explicit list of zero-based core indices.
    Cores(Vec<usize>),
}

impl CoreSet {
    /// Whether `core` is in the set.
    #[must_use]
    pub fn contains(&self, core: usize) -> bool {
        match self {
            CoreSet::All => true,
            CoreSet::Cores(list) => list.contains(&core),
        }
    }
}

/// How a stuck DVFS lane mishandles mode-change requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DvfsFault {
    /// Requests are silently dropped; the core stays in its current mode.
    Ignore,
    /// Requests are applied this many intervals late (latest request wins).
    Delay(usize),
}

/// One class of injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Multiplicative white noise on the power reading, with the given
    /// relative standard deviation.
    SensorNoise {
        /// Relative standard deviation (e.g. 0.05 = 5%).
        std: f64,
    },
    /// A fixed multiplicative gain error on the power reading.
    SensorBias {
        /// Gain applied to the true reading (0.8 = reads 20% low).
        factor: f64,
    },
    /// The sensor reports the reading from `lag` intervals ago.
    StaleTelemetry {
        /// How many intervals behind the report runs.
        lag: usize,
    },
    /// The sensor goes dark: reads 0 W, tagged [`Dark`].
    ///
    /// [`Dark`]: crate::SensorStatus::Dark
    SensorDropout,
    /// The core's DVFS lane mishandles mode-change requests.
    StuckDvfs(DvfsFault),
    /// The budget fraction is capped at this value (cooling failure).
    BudgetShock {
        /// Cap on the scheduled budget fraction, in `(0, 1]`.
        fraction: f64,
    },
}

impl FaultKind {
    /// Short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::SensorNoise { .. } => "noise",
            FaultKind::SensorBias { .. } => "bias",
            FaultKind::StaleTelemetry { .. } => "stale",
            FaultKind::SensorDropout => "dropout",
            FaultKind::StuckDvfs(_) => "stuck",
            FaultKind::BudgetShock { .. } => "shock",
        }
    }
}

/// One fault clause: a kind, the cores it hits, and when it is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultClause {
    /// The fault class.
    pub kind: FaultKind,
    /// Affected cores (ignored by [`FaultKind::BudgetShock`], which is
    /// chip-wide).
    pub cores: CoreSet,
    /// Active interval window.
    pub window: IntervalWindow,
}

/// A complete, deterministic fault schedule for one run.
///
/// Parse one from the CLI `--faults` spec with [`FaultPlan::parse`], or
/// build it programmatically. An empty plan is a no-op seam.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault clauses, applied in order.
    pub clauses: Vec<FaultClause>,
    /// Seed for the noise RNG.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            clauses: Vec::new(),
            seed: DEFAULT_SEED,
        }
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Builder: appends a clause.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, cores: CoreSet, window: IntervalWindow) -> Self {
        self.clauses.push(FaultClause {
            kind,
            cores,
            window,
        });
        self
    }

    /// Builder: sets the noise seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a `--faults` spec: semicolon-separated clauses of the form
    /// `kind[@cores][:key=value,...]`.
    ///
    /// * `kind` — `noise`, `bias`, `stale`, `dropout`, `stuck`, `shock`
    /// * `cores` — `all` (default) or `+`-separated indices (`0+2`)
    /// * keys — `from=<interval>` / `to=<interval>` (half-open window,
    ///   default always), `std=` (noise), `factor=` (bias), `lag=`
    ///   (stale, default 2), `delay=` (stuck; omitted = ignore requests
    ///   entirely), `frac=` (shock)
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_faults::FaultPlan;
    ///
    /// let plan =
    ///     FaultPlan::parse("dropout@1:from=10,to=20;stuck@0:from=5;shock:frac=0.6,from=30")
    ///         .unwrap();
    /// assert_eq!(plan.clauses.len(), 3);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] on malformed input.
    pub fn parse(spec: &str) -> Result<Self> {
        let bad = |msg: String| GpmError::FaultSpec(msg);
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (head, args) = match raw.split_once(':') {
                Some((h, a)) => (h.trim(), Some(a)),
                None => (raw, None),
            };
            let (kind_name, cores) = match head.split_once('@') {
                Some((k, c)) => (k.trim(), parse_cores(c.trim())?),
                None => (head, CoreSet::All),
            };

            let mut window = IntervalWindow::ALWAYS;
            let mut std = None;
            let mut factor = None;
            let mut lag = None;
            let mut delay = None;
            let mut frac = None;
            for kv in args.into_iter().flat_map(|a| a.split(',')) {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| bad(format!("`{kv}` is not key=value")))?;
                let value = value.trim();
                match key.trim() {
                    "from" => window.from = parse_num(value, "from")?,
                    "to" => window.to = Some(parse_num(value, "to")?),
                    "std" => std = Some(parse_float(value, "std")?),
                    "factor" => factor = Some(parse_float(value, "factor")?),
                    "lag" => lag = Some(parse_num(value, "lag")?),
                    "delay" => delay = Some(parse_num(value, "delay")?),
                    "frac" => frac = Some(parse_float(value, "frac")?),
                    other => return Err(bad(format!("unknown key `{other}` in `{raw}`"))),
                }
            }
            if let Some(to) = window.to {
                if to <= window.from {
                    return Err(bad(format!(
                        "empty window [{}, {to}) in `{raw}`",
                        window.from
                    )));
                }
            }

            let kind = match kind_name {
                "noise" => {
                    let std = std.ok_or_else(|| bad(format!("noise needs std= in `{raw}`")))?;
                    if !(std > 0.0 && std < 1.0) {
                        return Err(bad(format!("noise std {std} outside (0, 1)")));
                    }
                    FaultKind::SensorNoise { std }
                }
                "bias" => {
                    let factor =
                        factor.ok_or_else(|| bad(format!("bias needs factor= in `{raw}`")))?;
                    if !(factor > 0.0 && factor.is_finite()) {
                        return Err(bad(format!("bias factor {factor} must be positive")));
                    }
                    FaultKind::SensorBias { factor }
                }
                "stale" => {
                    let lag = lag.unwrap_or(2);
                    if lag == 0 {
                        return Err(bad("stale lag must be >= 1".into()));
                    }
                    FaultKind::StaleTelemetry { lag }
                }
                "dropout" => FaultKind::SensorDropout,
                "stuck" => FaultKind::StuckDvfs(match delay {
                    None | Some(0) => DvfsFault::Ignore,
                    Some(d) => DvfsFault::Delay(d),
                }),
                "shock" => {
                    let fraction =
                        frac.ok_or_else(|| bad(format!("shock needs frac= in `{raw}`")))?;
                    if !(fraction > 0.0 && fraction <= 1.0) {
                        return Err(bad(format!("shock frac {fraction} outside (0, 1]")));
                    }
                    FaultKind::BudgetShock { fraction }
                }
                other => return Err(bad(format!("unknown fault kind `{other}`"))),
            };
            clauses.push(FaultClause {
                kind,
                cores,
                window,
            });
        }
        if clauses.is_empty() {
            return Err(bad("fault spec contains no clauses".into()));
        }
        Ok(Self {
            clauses,
            seed: DEFAULT_SEED,
        })
    }

    /// Checks the plan against a chip width: every explicit core index must
    /// exist.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] on an out-of-range core index.
    pub fn validate(&self, cores: usize) -> Result<()> {
        for clause in &self.clauses {
            if let CoreSet::Cores(list) = &clause.cores {
                if list.is_empty() {
                    return Err(GpmError::FaultSpec(format!(
                        "{} clause names no cores",
                        clause.kind.label()
                    )));
                }
                for &c in list {
                    if c >= cores {
                        return Err(GpmError::FaultSpec(format!(
                            "core {c} out of range for a {cores}-core chip"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

fn parse_cores(s: &str) -> Result<CoreSet> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(CoreSet::All);
    }
    let list = s
        .split('+')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| GpmError::FaultSpec(format!("bad core index `{p}`")))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CoreSet::Cores(list))
}

fn parse_num(s: &str, key: &str) -> Result<usize> {
    s.parse()
        .map_err(|_| GpmError::FaultSpec(format!("bad integer for {key}: `{s}`")))
}

fn parse_float(s: &str, key: &str) -> Result<f64> {
    s.parse()
        .map_err(|_| GpmError::FaultSpec(format!("bad number for {key}: `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "noise@all:std=0.05;bias@0:factor=0.8,from=3;stale@1+2:lag=3,from=4,to=9;\
             dropout@1:from=10,to=20;stuck@0:delay=2,from=5;shock:frac=0.6,from=30",
        )
        .unwrap();
        assert_eq!(plan.clauses.len(), 6);
        assert_eq!(plan.clauses[0].kind, FaultKind::SensorNoise { std: 0.05 });
        assert_eq!(plan.clauses[0].cores, CoreSet::All);
        assert_eq!(plan.clauses[1].window.from, 3);
        assert_eq!(plan.clauses[2].cores, CoreSet::Cores(vec![1, 2]));
        assert_eq!(plan.clauses[2].kind, FaultKind::StaleTelemetry { lag: 3 });
        assert_eq!(plan.clauses[3].window.to, Some(20));
        assert_eq!(
            plan.clauses[4].kind,
            FaultKind::StuckDvfs(DvfsFault::Delay(2))
        );
        assert_eq!(
            plan.clauses[5].kind,
            FaultKind::BudgetShock { fraction: 0.6 }
        );
    }

    #[test]
    fn stuck_without_delay_ignores() {
        let plan = FaultPlan::parse("stuck@0").expect("stuck@0 spec parses");
        assert_eq!(
            plan.clauses[0].kind,
            FaultKind::StuckDvfs(DvfsFault::Ignore)
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "melt@0",
            "noise@0",               // missing std
            "noise@0:std=1.5",       // std out of range
            "shock",                 // missing frac
            "shock:frac=0",          // frac out of range
            "stale@0:lag=0",         // zero lag
            "dropout@x",             // bad core index
            "dropout@0:from=5,to=5", // empty window
            "dropout@0:weird=1",     // unknown key
            "dropout@0:from",        // not key=value
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, GpmError::FaultSpec(_)),
                "`{bad}` should be FaultSpec, got {err:?}"
            );
        }
    }

    #[test]
    fn validate_checks_core_range() {
        let plan = FaultPlan::parse("dropout@3").expect("dropout@3 spec parses");
        assert!(plan.validate(4).is_ok());
        assert!(matches!(plan.validate(2), Err(GpmError::FaultSpec(_))));
        assert!(FaultPlan::none().validate(1).is_ok());
    }

    #[test]
    fn window_membership() {
        let w = IntervalWindow {
            from: 3,
            to: Some(6),
        };
        assert!(!w.contains(2));
        assert!(w.contains(3));
        assert!(w.contains(5));
        assert!(!w.contains(6));
        assert!(IntervalWindow::ALWAYS.contains(1_000_000));
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::parse("noise:std=0.1;stuck@1:delay=3")
            .expect("noise:std=0.1;stuck@1:delay=3 spec parses");
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
