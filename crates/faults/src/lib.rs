//! Deterministic fault injection for the global power manager.
//!
//! The paper's manager is a firmware loop that trusts per-core power
//! sensors and DVFS actuators completely; its own Figure 6 scenario is a
//! cooling failure, yet the controller it evaluates never sees a bad
//! reading. This crate models exactly the imperfections a deployed
//! manager must survive, as a seeded, schedule-driven [`FaultPlan`]
//! injected at a single seam between the simulator's observations and the
//! manager's control loop:
//!
//! * **sensor noise / bias** — multiplicative white noise or a fixed gain
//!   error on a core's power reading;
//! * **stale telemetry** — the sensor reports the reading from interval
//!   `N − k` instead of interval `N`;
//! * **sensor dropout** — the sensor goes dark and reads 0 W (a dead
//!   current sensor), tagged [`SensorStatus::Dark`] for guard-aware
//!   consumers;
//! * **stuck DVFS lanes** — mode-change requests for a core are silently
//!   ignored, or applied a fixed number of intervals late;
//! * **budget shocks** — Figure-6-style cooling-failure steps that cap the
//!   scheduled budget fraction over a window.
//!
//! Everything is deterministic: the same plan, seed and input stream
//! produce bit-identical perturbations regardless of worker-pool width,
//! because the seam lives on the manager's serial control path.
//!
//! # Examples
//!
//! ```
//! use gpm_faults::{FaultPlan, FaultSession, SensorFrame, SensorStatus};
//! use gpm_types::{Bips, PowerMode, Watts};
//!
//! let plan = FaultPlan::parse("dropout@1:from=2,to=4").unwrap();
//! let mut session = FaultSession::new(&plan, 2).unwrap();
//! let raw = vec![
//!     SensorFrame::fresh(0, PowerMode::Turbo, Watts::new(20.0), Bips::new(2.0), 1_000),
//!     SensorFrame::fresh(1, PowerMode::Turbo, Watts::new(12.0), Bips::new(0.5), 250),
//! ];
//! let seen = session.observe(2, &raw);
//! assert_eq!(seen[0].status, SensorStatus::Fresh);
//! assert_eq!(seen[1].status, SensorStatus::Dark);
//! assert_eq!(seen[1].power, Watts::ZERO); // dead sensor reads zero current
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod plan;
mod session;

pub use fleet::{
    CorruptField, FleetFaultClause, FleetFaultKind, FleetFaultPlan, FleetFaultSession, NodeSet,
    FLEET_DEFAULT_SEED,
};
pub use plan::{CoreSet, DvfsFault, FaultClause, FaultKind, FaultPlan, IntervalWindow};
pub use session::{FaultEvent, FaultEventKind, FaultSession, SensorFrame, SensorStatus};
