//! Fleet-scale fault plans: what goes wrong across nodes, and when.
//!
//! The chip-level [`FaultPlan`](crate::FaultPlan) perturbs one chip's
//! sensors and actuators; this module models the failure classes a
//! datacenter-scale decision service sees instead: whole nodes flapping
//! in and out of contact, telemetry delivered ticks late, reports that
//! arrive corrupted (NaN or negative power cells, mismatched matrix
//! shapes), and solver invocations that time out. Clauses follow the
//! same `kind[@nodes][:key=value,...]` grammar as the chip plans and the
//! same half-open [`IntervalWindow`] activation windows.
//!
//! Unlike the chip session, the fleet session keeps **no mutable state**:
//! every draw is a pure hash of `(seed, clause, tick, node)`, so results
//! are bit-identical for any worker-pool width, any submission order,
//! and across a checkpoint/restore — a restored engine rebuilds the
//! session from the plan alone and observes the exact same fault
//! schedule.

use gpm_types::{GpmError, Result};
use serde::{Deserialize, Serialize};

use crate::plan::IntervalWindow;

/// Default seed for fleet fault draws (distinct from the chip-plan seed
/// so co-seeded chip and fleet plans decorrelate).
pub const FLEET_DEFAULT_SEED: u64 = 0xf1ee7;

/// Which nodes a fleet clause perturbs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSet {
    /// Every node in the fleet.
    All,
    /// An explicit list of node ids.
    Nodes(Vec<u64>),
}

impl NodeSet {
    /// Whether `node` is in the set.
    #[inline]
    #[must_use]
    pub fn contains(&self, node: u64) -> bool {
        match self {
            NodeSet::All => true,
            NodeSet::Nodes(list) => list.contains(&node),
        }
    }
}

/// Which field of a telemetry report a corruption clause mangles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptField {
    /// A power cell is replaced with NaN.
    Nan,
    /// A power cell is negated.
    Negative,
    /// The current-mode vector is truncated (shape mismatch).
    Shape,
}

impl CorruptField {
    /// Short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CorruptField::Nan => "nan",
            CorruptField::Negative => "neg",
            CorruptField::Shape => "shape",
        }
    }
}

/// One class of injected fleet fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetFaultKind {
    /// The node flaps: for the first `down` ticks of every `period`-tick
    /// cycle (phased from the window start) its reports never arrive.
    NodeFlap {
        /// Cycle length in ticks.
        period: u64,
        /// Ticks down at the start of each cycle.
        down: u64,
    },
    /// Reports arrive `ticks` late: a report stamped `t` is delivered at
    /// `t + ticks`, so the engine sees it aged by `ticks`.
    TickSkew {
        /// Delivery delay in ticks.
        ticks: u64,
    },
    /// Each report is independently corrupted with probability `rate`.
    CorruptReport {
        /// Which field gets mangled.
        field: CorruptField,
        /// Per-report corruption probability in `(0, 1]`.
        rate: f64,
    },
    /// Each solver invocation for an affected node's report group times
    /// out with probability `rate`, forcing a degraded-mode decision.
    SolverTimeout {
        /// Per-invocation timeout probability in `(0, 1]`.
        rate: f64,
    },
}

impl FleetFaultKind {
    /// Short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FleetFaultKind::NodeFlap { .. } => "flap",
            FleetFaultKind::TickSkew { .. } => "skew",
            FleetFaultKind::CorruptReport { .. } => "corrupt",
            FleetFaultKind::SolverTimeout { .. } => "timeout",
        }
    }
}

/// One fleet fault clause: a kind, the nodes it hits, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultClause {
    /// The fault class.
    pub kind: FleetFaultKind,
    /// Affected nodes.
    pub nodes: NodeSet,
    /// Active tick window (half-open, like chip interval windows).
    pub window: IntervalWindow,
}

/// A complete, deterministic fleet fault schedule.
///
/// Parse one from a `--faults` spec with [`FleetFaultPlan::parse`], or
/// build it programmatically. An empty plan is a no-op seam.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFaultPlan {
    /// The fault clauses, applied in order.
    pub clauses: Vec<FleetFaultClause>,
    /// Seed for the hash-based probability draws.
    pub seed: u64,
}

impl Default for FleetFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FleetFaultPlan {
    /// The empty plan: injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self {
            clauses: Vec::new(),
            seed: FLEET_DEFAULT_SEED,
        }
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Builder: appends a clause.
    #[must_use]
    pub fn with(mut self, kind: FleetFaultKind, nodes: NodeSet, window: IntervalWindow) -> Self {
        self.clauses.push(FleetFaultClause {
            kind,
            nodes,
            window,
        });
        self
    }

    /// Builder: sets the draw seed.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses a fleet `--faults` spec: semicolon-separated clauses of the
    /// form `kind[@nodes][:key=value,...]`.
    ///
    /// * `kind` — `flap`, `skew`, `corrupt`, `timeout`
    /// * `nodes` — `all` (default) or `+`-separated node ids (`0+5`)
    /// * keys — `from=<tick>` / `to=<tick>` (half-open window, default
    ///   always), `period=` / `down=` (flap; down defaults to 1),
    ///   `ticks=` (skew, default 1), `field=nan|neg|shape` (corrupt,
    ///   default nan), `rate=` (corrupt/timeout, default 1.0)
    ///
    /// # Examples
    ///
    /// ```
    /// use gpm_faults::FleetFaultPlan;
    ///
    /// let plan = FleetFaultPlan::parse(
    ///     "flap@0+5:period=4,down=1,from=3,to=9;corrupt:field=nan,rate=0.5",
    /// )
    /// .unwrap();
    /// assert_eq!(plan.clauses.len(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] on malformed input.
    pub fn parse(spec: &str) -> Result<Self> {
        let bad = |msg: String| GpmError::FaultSpec(msg);
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (head, args) = match raw.split_once(':') {
                Some((h, a)) => (h.trim(), Some(a)),
                None => (raw, None),
            };
            let (kind_name, nodes) = match head.split_once('@') {
                Some((k, n)) => (k.trim(), parse_nodes(n.trim())?),
                None => (head, NodeSet::All),
            };

            let mut window = IntervalWindow::ALWAYS;
            let mut period = None;
            let mut down = None;
            let mut ticks = None;
            let mut field = None;
            let mut rate = None;
            for kv in args.into_iter().flat_map(|a| a.split(',')) {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| bad(format!("`{kv}` is not key=value")))?;
                let value = value.trim();
                match key.trim() {
                    "from" => window.from = parse_num(value, "from")?,
                    "to" => window.to = Some(parse_num(value, "to")?),
                    "period" => period = Some(parse_u64(value, "period")?),
                    "down" => down = Some(parse_u64(value, "down")?),
                    "ticks" => ticks = Some(parse_u64(value, "ticks")?),
                    "field" => {
                        field = Some(match value {
                            "nan" => CorruptField::Nan,
                            "neg" => CorruptField::Negative,
                            "shape" => CorruptField::Shape,
                            other => {
                                return Err(bad(format!(
                                    "unknown corrupt field `{other}` (nan|neg|shape)"
                                )))
                            }
                        });
                    }
                    "rate" => rate = Some(parse_float(value, "rate")?),
                    other => return Err(bad(format!("unknown key `{other}` in `{raw}`"))),
                }
            }
            if let Some(to) = window.to {
                if to <= window.from {
                    return Err(bad(format!(
                        "empty window [{}, {to}) in `{raw}`",
                        window.from
                    )));
                }
            }
            let rate_in_range = |r: f64| r > 0.0 && r <= 1.0;

            let kind = match kind_name {
                "flap" => {
                    let period =
                        period.ok_or_else(|| bad(format!("flap needs period= in `{raw}`")))?;
                    let down = down.unwrap_or(1);
                    if period == 0 {
                        return Err(bad("flap period must be >= 1".into()));
                    }
                    if down == 0 || down > period {
                        return Err(bad(format!(
                            "flap down {down} must be in [1, period={period}]"
                        )));
                    }
                    FleetFaultKind::NodeFlap { period, down }
                }
                "skew" => {
                    let ticks = ticks.unwrap_or(1);
                    if ticks == 0 {
                        return Err(bad("skew ticks must be >= 1".into()));
                    }
                    FleetFaultKind::TickSkew { ticks }
                }
                "corrupt" => {
                    let rate = rate.unwrap_or(1.0);
                    if !rate_in_range(rate) {
                        return Err(bad(format!("corrupt rate {rate} outside (0, 1]")));
                    }
                    FleetFaultKind::CorruptReport {
                        field: field.unwrap_or(CorruptField::Nan),
                        rate,
                    }
                }
                "timeout" => {
                    let rate = rate.unwrap_or(1.0);
                    if !rate_in_range(rate) {
                        return Err(bad(format!("timeout rate {rate} outside (0, 1]")));
                    }
                    FleetFaultKind::SolverTimeout { rate }
                }
                other => return Err(bad(format!("unknown fleet fault kind `{other}`"))),
            };
            clauses.push(FleetFaultClause {
                kind,
                nodes,
                window,
            });
        }
        if clauses.is_empty() {
            return Err(bad("fleet fault spec contains no clauses".into()));
        }
        Ok(Self {
            clauses,
            seed: FLEET_DEFAULT_SEED,
        })
    }

    /// Checks the plan for internally-empty node lists.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] if a clause names no nodes.
    pub fn validate(&self) -> Result<()> {
        for clause in &self.clauses {
            if let NodeSet::Nodes(list) = &clause.nodes {
                if list.is_empty() {
                    return Err(GpmError::FaultSpec(format!(
                        "{} clause names no nodes",
                        clause.kind.label()
                    )));
                }
            }
        }
        Ok(())
    }
}

fn parse_nodes(s: &str) -> Result<NodeSet> {
    if s.eq_ignore_ascii_case("all") {
        return Ok(NodeSet::All);
    }
    let list = s
        .split('+')
        .map(|p| {
            p.trim()
                .parse::<u64>()
                .map_err(|_| GpmError::FaultSpec(format!("bad node id `{p}`")))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(NodeSet::Nodes(list))
}

fn parse_num(s: &str, key: &str) -> Result<usize> {
    s.parse()
        .map_err(|_| GpmError::FaultSpec(format!("bad integer for {key}: `{s}`")))
}

fn parse_u64(s: &str, key: &str) -> Result<u64> {
    s.parse()
        .map_err(|_| GpmError::FaultSpec(format!("bad integer for {key}: `{s}`")))
}

fn parse_float(s: &str, key: &str) -> Result<f64> {
    s.parse()
        .map_err(|_| GpmError::FaultSpec(format!("bad number for {key}: `{s}`")))
}

/// Stateless fault oracle for one fleet run.
///
/// Holds only the (validated) plan; every query is a pure function of
/// `(seed, clause, tick, node)`, so the session never needs
/// checkpointing and answers identically regardless of query order or
/// worker-pool width.
#[derive(Debug, Clone)]
pub struct FleetFaultSession {
    plan: FleetFaultPlan,
    /// Clause indices by kind, precomputed so each per-report probe scans
    /// only its own kind's clauses (and returns immediately for kinds the
    /// plan never mentions) — these probes sit on the decision service's
    /// per-report hot path.
    flap: Vec<usize>,
    skew: Vec<usize>,
    corrupt: Vec<usize>,
    timeout: Vec<usize>,
}

impl FleetFaultSession {
    /// Builds a session from a plan.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] if the plan fails
    /// [`FleetFaultPlan::validate`].
    pub fn new(plan: &FleetFaultPlan) -> Result<Self> {
        plan.validate()?;
        let by_kind = |want: &str| -> Vec<usize> {
            plan.clauses
                .iter()
                .enumerate()
                .filter(|(_, clause)| clause.kind.label() == want)
                .map(|(i, _)| i)
                .collect()
        };
        Ok(Self {
            flap: by_kind("flap"),
            skew: by_kind("skew"),
            corrupt: by_kind("corrupt"),
            timeout: by_kind("timeout"),
            plan: plan.clone(),
        })
    }

    /// The plan this session draws from.
    #[must_use]
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }

    /// Whether the session injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Whether `node`'s report for `tick` is lost to a flap outage.
    #[inline]
    #[must_use]
    pub fn node_down(&self, tick: u64, node: u64) -> bool {
        self.flap.iter().any(|&i| {
            let clause = &self.plan.clauses[i];
            if let FleetFaultKind::NodeFlap { period, down } = clause.kind {
                clause.nodes.contains(node)
                    && in_window(&clause.window, tick)
                    && (tick - clause.window.from as u64) % period < down
            } else {
                false
            }
        })
    }

    /// Delivery delay (in ticks) applied to `node`'s report for `tick`.
    ///
    /// The largest live skew clause wins; 0 means on-time delivery.
    #[inline]
    #[must_use]
    pub fn tick_skew(&self, tick: u64, node: u64) -> u64 {
        self.skew
            .iter()
            .filter_map(|&i| {
                let clause = &self.plan.clauses[i];
                if let FleetFaultKind::TickSkew { ticks } = clause.kind {
                    (clause.nodes.contains(node) && in_window(&clause.window, tick))
                        .then_some(ticks)
                } else {
                    None
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Which corruption (if any) hits `node`'s report for `tick`.
    ///
    /// The first live clause whose rate draw fires wins.
    #[inline]
    #[must_use]
    pub fn corrupt(&self, tick: u64, node: u64) -> Option<CorruptField> {
        self.corrupt.iter().find_map(|&i| {
            let clause = &self.plan.clauses[i];
            if let FleetFaultKind::CorruptReport { field, rate } = clause.kind {
                (clause.nodes.contains(node)
                    && in_window(&clause.window, tick)
                    && self.draw(i as u64, tick, node) < rate)
                    .then_some(field)
            } else {
                None
            }
        })
    }

    /// Whether the solver invocation for `node`'s report at `tick` times
    /// out (the node being the group leader of a deduplicated batch).
    #[inline]
    #[must_use]
    pub fn solver_timeout(&self, tick: u64, node: u64) -> bool {
        self.timeout.iter().any(|&i| {
            let clause = &self.plan.clauses[i];
            if let FleetFaultKind::SolverTimeout { rate } = clause.kind {
                clause.nodes.contains(node)
                    && in_window(&clause.window, tick)
                    && self.draw(i as u64, tick, node) < rate
            } else {
                false
            }
        })
    }

    /// Last tick at which any clause is active, if every window closes.
    ///
    /// `None` means some clause is open-ended. Used by the chaos
    /// experiment to locate the recovery epoch.
    #[must_use]
    pub fn last_fault_tick(&self) -> Option<u64> {
        let mut last = 0u64;
        for clause in &self.plan.clauses {
            match clause.window.to {
                None => return None,
                Some(to) => last = last.max(to.saturating_sub(1) as u64),
            }
        }
        Some(last)
    }

    /// A uniform draw in `[0, 1)` keyed on `(seed, clause, tick, node)`.
    fn draw(&self, clause: u64, tick: u64, node: u64) -> f64 {
        let mut h = splitmix64(self.plan.seed ^ 0x6c8e_9cf5_7054_9735);
        h = splitmix64(h ^ clause);
        h = splitmix64(h ^ tick);
        h = splitmix64(h ^ node);
        // Top 53 bits → uniform double in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn in_window(window: &IntervalWindow, tick: u64) -> bool {
    let t = usize::try_from(tick).unwrap_or(usize::MAX);
    window.contains(t)
}

/// SplitMix64 finalizer: the standard avalanche mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_fleet_grammar() {
        let plan = FleetFaultPlan::parse(
            "flap@0+5:period=4,down=2,from=3,to=9;skew:ticks=2;\
             corrupt@7:field=neg,rate=0.5,from=1;timeout:rate=0.25,to=8",
        )
        .unwrap();
        assert_eq!(plan.clauses.len(), 4);
        assert_eq!(
            plan.clauses[0].kind,
            FleetFaultKind::NodeFlap { period: 4, down: 2 }
        );
        assert_eq!(plan.clauses[0].nodes, NodeSet::Nodes(vec![0, 5]));
        assert_eq!(plan.clauses[0].window.from, 3);
        assert_eq!(plan.clauses[0].window.to, Some(9));
        assert_eq!(plan.clauses[1].kind, FleetFaultKind::TickSkew { ticks: 2 });
        assert_eq!(plan.clauses[1].nodes, NodeSet::All);
        assert_eq!(
            plan.clauses[2].kind,
            FleetFaultKind::CorruptReport {
                field: CorruptField::Negative,
                rate: 0.5,
            }
        );
        assert_eq!(
            plan.clauses[3].kind,
            FleetFaultKind::SolverTimeout { rate: 0.25 }
        );
    }

    #[test]
    fn defaults_fill_in() {
        let plan = FleetFaultPlan::parse("flap:period=3;skew;corrupt;timeout")
            .expect("flap:period=3;skew;corrupt;timeout spec parses");
        assert_eq!(
            plan.clauses[0].kind,
            FleetFaultKind::NodeFlap { period: 3, down: 1 }
        );
        assert_eq!(plan.clauses[1].kind, FleetFaultKind::TickSkew { ticks: 1 });
        assert_eq!(
            plan.clauses[2].kind,
            FleetFaultKind::CorruptReport {
                field: CorruptField::Nan,
                rate: 1.0,
            }
        );
        assert_eq!(
            plan.clauses[3].kind,
            FleetFaultKind::SolverTimeout { rate: 1.0 }
        );
    }

    #[test]
    fn rejects_malformed_fleet_specs() {
        for bad in [
            "",
            "melt@0",
            "flap",                      // missing period
            "flap:period=0",             // zero period
            "flap:period=2,down=3",      // down > period
            "flap:period=2,down=0",      // zero down
            "skew:ticks=0",              // zero skew
            "corrupt:field=weird",       // unknown field
            "corrupt:rate=0",            // rate out of range
            "corrupt:rate=1.5",          // rate out of range
            "timeout:rate=-0.1",         // rate out of range
            "flap@x:period=2",           // bad node id
            "flap:period=2,from=5,to=5", // empty window
            "flap:period=2,weird=1",     // unknown key
            "flap:period",               // not key=value
        ] {
            let err = FleetFaultPlan::parse(bad).unwrap_err();
            assert!(
                matches!(err, GpmError::FaultSpec(_)),
                "`{bad}` should be FaultSpec, got {err:?}"
            );
        }
    }

    #[test]
    fn flap_cycles_deterministically() {
        let plan = FleetFaultPlan::parse("flap@3:period=4,down=2,from=3,to=11")
            .expect("flap@3:period=4,down=2,from=3,to=11 spec parses");
        let s = FleetFaultSession::new(&plan).unwrap();
        // Phase anchors at the window start (tick 3).
        let down: Vec<u64> = (0..14).filter(|&t| s.node_down(t, 3)).collect();
        assert_eq!(down, vec![3, 4, 7, 8]);
        // Other nodes are untouched.
        assert!((0..14).all(|t| !s.node_down(t, 2)));
    }

    #[test]
    fn skew_takes_largest_live_clause() {
        let plan = FleetFaultPlan::parse("skew@1:ticks=2,from=2,to=6;skew@1:ticks=1")
            .expect("skew@1:ticks=2,from=2,to=6;skew@1:ticks=1 spec parses");
        let s = FleetFaultSession::new(&plan).unwrap();
        assert_eq!(s.tick_skew(0, 1), 1);
        assert_eq!(s.tick_skew(3, 1), 2);
        assert_eq!(s.tick_skew(6, 1), 1);
        assert_eq!(s.tick_skew(3, 0), 0);
    }

    #[test]
    fn corrupt_draws_are_pure_and_seeded() {
        let plan = FleetFaultPlan::parse("corrupt:rate=0.5")
            .unwrap()
            .seeded(11);
        let s = FleetFaultSession::new(&plan).unwrap();
        let a: Vec<_> = (0..64).map(|n| s.corrupt(5, n)).collect();
        let b: Vec<_> = (0..64).map(|n| s.corrupt(5, n)).collect();
        assert_eq!(a, b); // pure: same query, same answer
        let hits = a.iter().filter(|c| c.is_some()).count();
        assert!(hits > 10 && hits < 54, "rate=0.5 over 64 draws hit {hits}");
        // A different seed gives a different pattern.
        let s2 = FleetFaultSession::new(&plan.clone().seeded(12)).unwrap();
        let c: Vec<_> = (0..64).map(|n| s2.corrupt(5, n)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn rate_one_always_fires_inside_window() {
        let plan = FleetFaultPlan::parse("timeout:rate=1.0,from=2,to=4")
            .expect("timeout:rate=1.0,from=2,to=4 spec parses");
        let s = FleetFaultSession::new(&plan).unwrap();
        assert!(!s.solver_timeout(1, 0));
        assert!(s.solver_timeout(2, 0));
        assert!(s.solver_timeout(3, 9));
        assert!(!s.solver_timeout(4, 0));
    }

    #[test]
    fn last_fault_tick_requires_closed_windows() {
        let closed = FleetFaultPlan::parse("flap:period=2,from=1,to=5;skew:to=9")
            .expect("flap:period=2,from=1,to=5;skew:to=9 spec parses");
        let s = FleetFaultSession::new(&closed).unwrap();
        assert_eq!(s.last_fault_tick(), Some(8));
        let open = FleetFaultPlan::parse("flap:period=2,from=1,to=5;skew")
            .expect("flap:period=2,from=1,to=5;skew spec parses");
        let s = FleetFaultSession::new(&open).unwrap();
        assert_eq!(s.last_fault_tick(), None);
    }

    #[test]
    fn validate_rejects_empty_node_lists() {
        let plan = FleetFaultPlan::none().with(
            FleetFaultKind::TickSkew { ticks: 1 },
            NodeSet::Nodes(vec![]),
            IntervalWindow::ALWAYS,
        );
        assert!(matches!(
            FleetFaultSession::new(&plan),
            Err(GpmError::FaultSpec(_))
        ));
    }

    #[test]
    fn fleet_plan_roundtrips_through_json() {
        let plan = FleetFaultPlan::parse("flap@2:period=3,down=1;corrupt:field=shape,rate=0.2")
            .expect("flap@2:period=3,down=1;corrupt:field=shape,rate=0.2 spec parses");
        let json = serde_json::to_string(&plan).unwrap();
        let back: FleetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
