//! Live fault state for one run: the seam the manager reads through.

use std::collections::VecDeque;

use gpm_types::{Bips, GpmError, ModeCombination, PowerMode, Result, Watts};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::plan::{DvfsFault, FaultKind, FaultPlan};

/// How many post-perturbation frames per core the session keeps for
/// stale-telemetry replay. Bounds memory on long runs; lags beyond this
/// saturate to the oldest retained frame.
const HISTORY_DEPTH: usize = 64;

/// Freshness of a sensor reading as delivered through the fault seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorStatus {
    /// The reading is from the interval just completed.
    Fresh,
    /// The reading is from `age` intervals ago.
    Stale {
        /// How many intervals behind the reading is.
        age: usize,
    },
    /// The sensor is dark; power and BIPS read zero.
    Dark,
}

/// One core's telemetry for one explore interval, as seen through the
/// fault seam.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFrame {
    /// Zero-based core index.
    pub core: usize,
    /// The mode the core ran in (per the sensor's record).
    pub mode: PowerMode,
    /// Reported average power over the interval.
    pub power: Watts,
    /// Reported throughput over the interval.
    pub bips: Bips,
    /// Reported instructions retired over the interval.
    pub instructions: u64,
    /// Freshness of this reading.
    pub status: SensorStatus,
}

impl SensorFrame {
    /// A fresh, unperturbed reading straight from the simulator.
    #[must_use]
    pub fn fresh(
        core: usize,
        mode: PowerMode,
        power: Watts,
        bips: Bips,
        instructions: u64,
    ) -> Self {
        Self {
            core,
            mode,
            power,
            bips,
            instructions,
            status: SensorStatus::Fresh,
        }
    }
}

/// What kind of fault fired, with its parameters as applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// Noise perturbed a core's power reading.
    Noise {
        /// Affected core.
        core: usize,
    },
    /// A gain error scaled a core's power reading.
    Bias {
        /// Affected core.
        core: usize,
    },
    /// A core's reading was replaced by one `age` intervals old.
    Stale {
        /// Affected core.
        core: usize,
        /// Age of the substituted reading.
        age: usize,
    },
    /// A core's sensor went dark for this interval.
    Dropout {
        /// Affected core.
        core: usize,
    },
    /// A mode-change request for a core was silently dropped.
    StuckIgnored {
        /// Affected core.
        core: usize,
    },
    /// A mode-change request for a core was deferred.
    StuckDelayed {
        /// Affected core.
        core: usize,
        /// Interval at which the request will finally apply.
        until: usize,
    },
    /// The budget fraction was capped by a cooling-failure shock.
    BudgetShock {
        /// The cap applied.
        fraction: f64,
    },
}

/// A recorded fault occurrence: what happened and when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Explore interval index at which the fault fired.
    pub interval: usize,
    /// What fired.
    pub kind: FaultEventKind,
}

/// A deferred mode-change request on a stuck-delay lane.
#[derive(Debug, Clone, Copy)]
struct PendingMode {
    core: usize,
    mode: PowerMode,
    apply_at: usize,
}

/// Live fault state for one run.
///
/// All processing is serial and seeded, so a given plan produces
/// bit-identical perturbations regardless of worker-pool width. Faults
/// flow through three hooks, called once per interval by the manager:
/// [`observe`](Self::observe) (telemetry), [`actuate`](Self::actuate)
/// (DVFS requests), and [`budget_fraction`](Self::budget_fraction)
/// (budget schedule).
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    cores: usize,
    rng: SmallRng,
    /// Per-core ring of post-perturbation frames, newest at the back.
    history: Vec<VecDeque<SensorFrame>>,
    pending: Vec<PendingMode>,
    /// Shock windows already announced (clause indices).
    shocks_seen: Vec<bool>,
    events: Vec<FaultEvent>,
}

impl FaultSession {
    /// Builds a session for a `cores`-wide chip.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::FaultSpec`] if the plan names a core the chip
    /// does not have.
    pub fn new(plan: &FaultPlan, cores: usize) -> Result<Self> {
        if cores == 0 {
            return Err(GpmError::FaultSpec("chip has zero cores".into()));
        }
        plan.validate(cores)?;
        Ok(Self {
            plan: plan.clone(),
            cores,
            rng: SmallRng::seed_from_u64(plan.seed),
            history: vec![VecDeque::with_capacity(HISTORY_DEPTH); cores],
            pending: Vec::new(),
            shocks_seen: vec![false; plan.clauses.len()],
            events: Vec::new(),
        })
    }

    /// Number of cores the session was built for.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Passes one interval's raw telemetry through the fault seam.
    ///
    /// Per core, in order: bias scales the reading, noise perturbs it,
    /// staleness substitutes an older (already-perturbed) frame, and
    /// dropout — which wins over everything — zeroes it and tags it
    /// [`SensorStatus::Dark`]. The RNG advances only when a noise clause
    /// is live for that core and interval, so plans without noise are
    /// RNG-free.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not hold exactly one frame per core.
    pub fn observe(&mut self, interval: usize, raw: &[SensorFrame]) -> Vec<SensorFrame> {
        assert_eq!(
            raw.len(),
            self.cores,
            "observe() expects one frame per core"
        );
        let mut out = Vec::with_capacity(raw.len());
        for frame in raw {
            let core = frame.core;
            let mut seen = *frame;

            for clause in &self.plan.clauses {
                if !clause.window.contains(interval) || !clause.cores.contains(core) {
                    continue;
                }
                if let FaultKind::SensorBias { factor } = clause.kind {
                    seen.power = Watts::new(seen.power.value() * factor);
                    self.events.push(FaultEvent {
                        interval,
                        kind: FaultEventKind::Bias { core },
                    });
                }
            }
            for clause in &self.plan.clauses {
                if !clause.window.contains(interval) || !clause.cores.contains(core) {
                    continue;
                }
                if let FaultKind::SensorNoise { std } = clause.kind {
                    let draw = gaussian(&mut self.rng);
                    seen.power = Watts::new((seen.power.value() * (1.0 + std * draw)).max(0.0));
                    self.events.push(FaultEvent {
                        interval,
                        kind: FaultEventKind::Noise { core },
                    });
                }
            }

            // Record the perturbed-but-timely frame before staleness and
            // dropout, so a stale sensor replays what it *would* have
            // reported back then (including its own bias/noise).
            let ring = &mut self.history[core];
            if ring.len() == HISTORY_DEPTH {
                ring.pop_front();
            }
            ring.push_back(seen);

            for clause in &self.plan.clauses {
                if !clause.window.contains(interval) || !clause.cores.contains(core) {
                    continue;
                }
                if let FaultKind::StaleTelemetry { lag } = clause.kind {
                    let ring = &self.history[core];
                    // Newest entry is the current interval (age 0).
                    let age = lag.min(ring.len() - 1);
                    if age > 0 {
                        let old = ring[ring.len() - 1 - age];
                        seen = SensorFrame {
                            core,
                            status: SensorStatus::Stale { age },
                            ..old
                        };
                        self.events.push(FaultEvent {
                            interval,
                            kind: FaultEventKind::Stale { core, age },
                        });
                    }
                }
            }

            let dark = self.plan.clauses.iter().any(|clause| {
                matches!(clause.kind, FaultKind::SensorDropout)
                    && clause.window.contains(interval)
                    && clause.cores.contains(core)
            });
            if dark {
                seen = SensorFrame {
                    core,
                    mode: seen.mode,
                    power: Watts::ZERO,
                    bips: Bips::ZERO,
                    instructions: 0,
                    status: SensorStatus::Dark,
                };
                self.events.push(FaultEvent {
                    interval,
                    kind: FaultEventKind::Dropout { core },
                });
            }

            out.push(seen);
        }
        out
    }

    /// Passes the manager's mode-change requests through stuck DVFS lanes.
    ///
    /// `current` is the combination the chip is actually running;
    /// `requested` is what the manager wants next. Returns what the chip
    /// will really run. Stuck-ignore lanes keep their current mode;
    /// stuck-delay lanes defer the request (latest request wins) and
    /// apply it once its delay elapses — even if the window has closed by
    /// then, matching a queue that drains late.
    pub fn actuate(
        &mut self,
        interval: usize,
        requested: &ModeCombination,
        current: &ModeCombination,
    ) -> ModeCombination {
        let mut effective = requested.clone();

        // Apply any matured deferred requests first: they override the
        // manager's new request for that lane only if the lane is still
        // stuck (checked below via the fresh-request path replacing them).
        let mut matured: Vec<PendingMode> = Vec::new();
        self.pending.retain(|p| {
            if p.apply_at <= interval {
                matured.push(*p);
                false
            } else {
                true
            }
        });

        for (idx, mode) in requested.as_slice().iter().enumerate() {
            let cur = current.as_slice()[idx];
            if *mode == cur {
                continue;
            }
            let fault = self.plan.clauses.iter().find_map(|clause| {
                if clause.window.contains(interval) && clause.cores.contains(idx) {
                    if let FaultKind::StuckDvfs(f) = clause.kind {
                        return Some(f);
                    }
                }
                None
            });
            match fault {
                None => {}
                Some(DvfsFault::Ignore) => {
                    effective.set(gpm_types::CoreId::new(idx), cur);
                    self.events.push(FaultEvent {
                        interval,
                        kind: FaultEventKind::StuckIgnored { core: idx },
                    });
                }
                Some(DvfsFault::Delay(d)) => {
                    effective.set(gpm_types::CoreId::new(idx), cur);
                    // Latest request wins: replace any queued one.
                    self.pending.retain(|p| p.core != idx);
                    let until = interval + d;
                    self.pending.push(PendingMode {
                        core: idx,
                        mode: *mode,
                        apply_at: until,
                    });
                    self.events.push(FaultEvent {
                        interval,
                        kind: FaultEventKind::StuckDelayed { core: idx, until },
                    });
                }
            }
        }

        for p in matured {
            // A queued request lands unless a fresh request already got
            // through to that lane this interval (then the fresh one wins
            // and the stale queued one is dropped).
            let cur = current.as_slice()[p.core];
            if effective.as_slice()[p.core] == cur {
                effective.set(gpm_types::CoreId::new(p.core), p.mode);
            }
        }

        effective
    }

    /// Applies budget shocks to the scheduled budget fraction.
    ///
    /// Returns `min(scheduled, frac)` over every live shock clause. An
    /// event is recorded once per shock window, at entry.
    pub fn budget_fraction(&mut self, interval: usize, scheduled: f64) -> f64 {
        let mut fraction = scheduled;
        for (i, clause) in self.plan.clauses.iter().enumerate() {
            if let FaultKind::BudgetShock { fraction: cap } = clause.kind {
                if clause.window.contains(interval) {
                    if fraction > cap {
                        fraction = cap;
                    }
                    if !self.shocks_seen[i] {
                        self.shocks_seen[i] = true;
                        self.events.push(FaultEvent {
                            interval,
                            kind: FaultEventKind::BudgetShock { fraction: cap },
                        });
                    }
                } else {
                    // Re-arm so a future window re-announces itself.
                    self.shocks_seen[i] = false;
                }
            }
        }
        fraction
    }

    /// The fault events recorded so far, in firing order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Takes ownership of the recorded events, leaving the log empty.
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Standard-normal draw via Irwin–Hall (sum of 12 uniforms − 6), matching
/// the simulator's own sensor-noise model.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += rng.gen::<f64>();
    }
    acc - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CoreSet, IntervalWindow};

    fn frames(powers: &[f64]) -> Vec<SensorFrame> {
        powers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                SensorFrame::fresh(i, PowerMode::Turbo, Watts::new(p), Bips::new(1.0), 1_000)
            })
            .collect()
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut s = FaultSession::new(&FaultPlan::none(), 3).unwrap();
        let raw = frames(&[10.0, 20.0, 30.0]);
        for interval in 0..5 {
            let seen = s.observe(interval, &raw);
            assert_eq!(seen, raw);
        }
        let req = ModeCombination::uniform(3, PowerMode::Eff1);
        let cur = ModeCombination::uniform(3, PowerMode::Turbo);
        assert_eq!(s.actuate(0, &req, &cur), req);
        assert_eq!(s.budget_fraction(0, 0.8), 0.8);
        assert!(s.events().is_empty());
    }

    #[test]
    fn dropout_zeroes_and_tags_dark() {
        let plan =
            FaultPlan::parse("dropout@1:from=2,to=4").expect("dropout@1:from=2,to=4 spec parses");
        let mut s = FaultSession::new(&plan, 2).unwrap();
        let raw = frames(&[10.0, 20.0]);
        assert_eq!(s.observe(1, &raw)[1].status, SensorStatus::Fresh);
        let seen = s.observe(2, &raw);
        assert_eq!(seen[1].status, SensorStatus::Dark);
        assert_eq!(seen[1].power, Watts::ZERO);
        assert_eq!(seen[1].bips, Bips::ZERO);
        assert_eq!(seen[0].status, SensorStatus::Fresh);
        assert_eq!(s.observe(4, &raw)[1].status, SensorStatus::Fresh);
        assert_eq!(s.events().len(), 1); // only interval 2 was observed inside the window
    }

    #[test]
    fn bias_scales_power() {
        let plan = FaultPlan::parse("bias@0:factor=0.5").expect("bias@0:factor=0.5 spec parses");
        let mut s = FaultSession::new(&plan, 2).unwrap();
        let seen = s.observe(0, &frames(&[10.0, 20.0]));
        assert!((seen[0].power.value() - 5.0).abs() < 1e-12);
        assert!((seen[1].power.value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let plan = FaultPlan::parse("noise@all:std=0.1")
            .expect("noise@all:std=0.1 spec parses")
            .seeded(7);
        let raw = frames(&[10.0, 20.0]);
        let mut a = FaultSession::new(&plan, 2).unwrap();
        let mut b = FaultSession::new(&plan, 2).unwrap();
        for interval in 0..10 {
            assert_eq!(a.observe(interval, &raw), b.observe(interval, &raw));
        }
        // A different seed gives a different stream.
        let mut c = FaultSession::new(&plan.clone().seeded(8), 2).unwrap();
        let diverged = (0..10).any(|i| c.observe(i, &raw) != a.observe(i, &raw));
        assert!(diverged);
    }

    #[test]
    fn stale_replays_old_frames() {
        let plan =
            FaultPlan::parse("stale@0:lag=2,from=3").expect("stale@0:lag=2,from=3 spec parses");
        let mut s = FaultSession::new(&plan, 1).unwrap();
        for interval in 0..3 {
            let raw = frames(&[10.0 + interval as f64]);
            let seen = s.observe(interval, &raw);
            assert_eq!(seen[0].status, SensorStatus::Fresh);
        }
        // Interval 3 reports interval 1's reading (11.0), two behind.
        let seen = s.observe(3, &frames(&[13.0]));
        assert_eq!(seen[0].status, SensorStatus::Stale { age: 2 });
        assert!((seen[0].power.value() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn stale_lag_saturates_to_available_history() {
        let plan = FaultPlan::parse("stale@0:lag=50").expect("stale@0:lag=50 spec parses");
        let mut s = FaultSession::new(&plan, 1).unwrap();
        // First interval: no older frame exists, reading stays fresh.
        let seen = s.observe(0, &frames(&[10.0]));
        assert_eq!(seen[0].status, SensorStatus::Fresh);
        let seen = s.observe(1, &frames(&[11.0]));
        assert_eq!(seen[0].status, SensorStatus::Stale { age: 1 });
        assert!((seen[0].power.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stuck_ignore_keeps_current_mode() {
        let plan =
            FaultPlan::parse("stuck@1:from=0,to=2").expect("stuck@1:from=0,to=2 spec parses");
        let mut s = FaultSession::new(&plan, 2).unwrap();
        let cur = ModeCombination::uniform(2, PowerMode::Turbo);
        let req = ModeCombination::new(vec![PowerMode::Eff1, PowerMode::Eff2]);
        let eff = s.actuate(0, &req, &cur);
        assert_eq!(eff.as_slice(), &[PowerMode::Eff1, PowerMode::Turbo]);
        // Window over: requests go through again.
        let eff = s.actuate(2, &req, &cur);
        assert_eq!(eff.as_slice(), &[PowerMode::Eff1, PowerMode::Eff2]);
    }

    #[test]
    fn stuck_delay_defers_then_applies() {
        let plan = FaultPlan::parse("stuck@0:delay=2,from=0,to=1")
            .expect("stuck@0:delay=2,from=0,to=1 spec parses");
        let mut s = FaultSession::new(&plan, 1).unwrap();
        let turbo = ModeCombination::uniform(1, PowerMode::Turbo);
        let eff2 = ModeCombination::uniform(1, PowerMode::Eff2);
        // Interval 0: request Eff2 — deferred until interval 2.
        let eff = s.actuate(0, &eff2, &turbo);
        assert_eq!(eff.as_slice(), &[PowerMode::Turbo]);
        // Interval 1 (window closed, no new request): still Turbo.
        let eff = s.actuate(1, &turbo, &turbo);
        assert_eq!(eff.as_slice(), &[PowerMode::Turbo]);
        // Interval 2: the queued Eff2 finally lands.
        let eff = s.actuate(2, &turbo, &turbo);
        assert_eq!(eff.as_slice(), &[PowerMode::Eff2]);
        assert!(s
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultEventKind::StuckDelayed { core: 0, until: 2 })));
    }

    #[test]
    fn budget_shock_caps_fraction_and_fires_once_per_window() {
        let plan = FaultPlan::parse("shock:frac=0.5,from=2,to=4")
            .expect("shock:frac=0.5,from=2,to=4 spec parses");
        let mut s = FaultSession::new(&plan, 1).unwrap();
        assert_eq!(s.budget_fraction(0, 0.8), 0.8);
        assert_eq!(s.budget_fraction(2, 0.8), 0.5);
        assert_eq!(s.budget_fraction(3, 0.4), 0.4); // already under the cap
        assert_eq!(s.budget_fraction(4, 0.8), 0.8);
        let shocks = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultEventKind::BudgetShock { .. }))
            .count();
        assert_eq!(shocks, 1);
    }

    #[test]
    fn validates_core_range_on_construction() {
        let plan = FaultPlan::parse("dropout@5").expect("dropout@5 spec parses");
        assert!(matches!(
            FaultSession::new(&plan, 4),
            Err(GpmError::FaultSpec(_))
        ));
        assert!(matches!(
            FaultSession::new(&FaultPlan::none(), 0),
            Err(GpmError::FaultSpec(_))
        ));
    }

    #[test]
    fn window_type_is_reexported_and_usable() {
        let plan = FaultPlan::none().with(
            FaultKind::SensorDropout,
            CoreSet::Cores(vec![0]),
            IntervalWindow {
                from: 1,
                to: Some(2),
            },
        );
        let mut s = FaultSession::new(&plan, 1).unwrap();
        assert_eq!(s.observe(0, &frames(&[5.0]))[0].status, SensorStatus::Fresh);
        assert_eq!(s.observe(1, &frames(&[5.0]))[0].status, SensorStatus::Dark);
    }
}
