//! The trace-based CMP simulator — the paper's fast policy-evaluation tool.

use std::sync::Arc;

use gpm_trace::BenchmarkTraces;
use gpm_types::{
    Bips, CoreId, GpmError, Micros, ModeCombination, PowerMode, Result, TimeSeries, Watts,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::SimParams;

/// What the global manager's local monitors report for one core after an
/// explore interval: the current-sensor power reading and the
/// performance-counter throughput, plus the mode the core ran in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreObservation {
    /// The observed core.
    pub core: CoreId,
    /// Mode the core ran in during the interval.
    pub mode: PowerMode,
    /// Average power over the interval (after sensor noise, if modelled).
    pub power: Watts,
    /// Average throughput over the interval, including the zero-progress
    /// transition stall (this is why observed BIPS embeds the paper's
    /// `explore/(explore+t)` de-rating).
    pub bips: Bips,
    /// Instructions retired during the interval.
    pub instructions: u64,
}

/// Result of advancing the simulation by one explore interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOutcome {
    /// Per-core sensor/counter observations.
    pub observed: Vec<CoreObservation>,
    /// Chip power per completed `delta` step, in watts.
    pub chip_power: Vec<f64>,
    /// Chip throughput per completed `delta` step, in BIPS.
    pub chip_bips: Vec<f64>,
    /// The GALS synchronisation stall paid at the interval start.
    pub transition_stall: Micros,
    /// Wall time covered (a full explore interval unless the run
    /// terminated mid-interval).
    pub duration: Micros,
    /// Whether a benchmark completed during this interval.
    pub finished: bool,
}

impl ExploreOutcome {
    /// An empty outcome suitable as the target of
    /// [`TraceCmpSim::advance_explore_into`]; its buffers grow on first use
    /// and are reused on every subsequent interval.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            observed: Vec::new(),
            chip_power: Vec::new(),
            chip_bips: Vec::new(),
            transition_stall: Micros::ZERO,
            duration: Micros::ZERO,
            finished: false,
        }
    }

    /// Mean chip power over the interval.
    #[must_use]
    pub fn average_chip_power(&self) -> Watts {
        if self.chip_power.is_empty() {
            return Watts::ZERO;
        }
        Watts::new(self.chip_power.iter().sum::<f64>() / self.chip_power.len() as f64)
    }

    /// Mean chip throughput over the interval.
    #[must_use]
    pub fn total_bips(&self) -> Bips {
        Bips::new(self.observed.iter().map(|o| o.bips.value()).sum())
    }
}

/// Full time-series record of a simulation run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SimHistory {
    /// Chip power on the `delta` grid.
    pub chip_power: Option<TimeSeries<f64>>,
    /// Per-core power on the `delta` grid.
    pub per_core_power: Vec<TimeSeries<f64>>,
    /// Per-core throughput on the `delta` grid.
    pub per_core_bips: Vec<TimeSeries<f64>>,
    /// Every mode assignment applied, with its start time.
    pub mode_changes: Vec<(Micros, ModeCombination)>,
}

/// The trace-based CMP simulator (Section 3.1).
///
/// Cores progress their benchmark's per-mode traces by instruction position;
/// the position is the alignment key, so a core switched from Turbo to Eff2
/// mid-run continues from the same program point in the Eff2 trace. All mode
/// switches happen at explore boundaries via [`advance_explore`], which pays
/// the longest per-core transition as a chip-wide stall (the multiple-clock-
/// domain synchronisation cost the paper describes) during which cores burn
/// power at their previous mode's level without retiring instructions.
///
/// [`advance_explore`]: TraceCmpSim::advance_explore
#[derive(Debug, Clone)]
pub struct TraceCmpSim {
    traces: Vec<Arc<BenchmarkTraces>>,
    params: SimParams,
    modes: ModeCombination,
    positions: Vec<f64>,
    now: f64,
    finished: bool,
    history: SimHistory,
    noise: SmallRng,
}

impl TraceCmpSim {
    /// Builds a simulator over one trace set per core. All cores start at
    /// Turbo at position 0.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] for an empty core list or invalid
    /// `params`.
    pub fn new(traces: Vec<Arc<BenchmarkTraces>>, params: SimParams) -> Result<Self> {
        params.validate()?;
        if traces.is_empty() {
            return Err(GpmError::InvalidConfig {
                parameter: "traces",
                reason: "need at least one core".into(),
            });
        }
        let cores = traces.len();
        let delta = params.delta;
        let noise = SmallRng::seed_from_u64(params.sensor.seed);
        Ok(Self {
            traces,
            params,
            modes: ModeCombination::uniform(cores, PowerMode::Turbo),
            positions: vec![0.0; cores],
            now: 0.0,
            finished: false,
            history: SimHistory {
                chip_power: Some(TimeSeries::new(delta)),
                per_core_power: vec![TimeSeries::new(delta); cores],
                per_core_bips: vec![TimeSeries::new(delta); cores],
                mode_changes: Vec::new(),
            },
            noise,
        })
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Micros {
        Micros::new(self.now)
    }

    /// Current per-core modes.
    #[must_use]
    pub fn modes(&self) -> &ModeCombination {
        &self.modes
    }

    /// Current per-core instruction positions.
    #[must_use]
    pub fn positions(&self) -> Vec<u64> {
        // Positions accumulate fractional instruction gains; round to the
        // nearest instruction (float noise of ~1e-10 per delta otherwise
        // truncates 1 000 000.0-ε down to 999 999).
        self.positions.iter().map(|&p| p.round() as u64).collect()
    }

    /// The per-core trace sets.
    #[must_use]
    pub fn traces(&self) -> &[Arc<BenchmarkTraces>] {
        &self.traces
    }

    /// The simulation parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// `true` once a benchmark has completed (or the time cap was hit).
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Time-series record of the run so far.
    #[must_use]
    pub fn history(&self) -> &SimHistory {
        &self.history
    }

    /// The chip's maximum power envelope: the sum over cores of each
    /// benchmark's peak Turbo power. Budgets are quoted as fractions of
    /// this value, matching the paper's "% of maximum chip power".
    #[must_use]
    pub fn power_envelope(&self) -> Watts {
        self.traces
            .iter()
            .map(|t| t.trace(PowerMode::Turbo).peak_power())
            .sum()
    }

    /// What `core` would deliver over the next explore interval if run in
    /// `mode`, ignoring transition costs: `(average BIPS, average power)`.
    ///
    /// This is *future knowledge* — it reads the actual trace — and exists
    /// for the oracle policy's matrices. Predictive policies must not use
    /// it; they scale current observations instead.
    #[must_use]
    pub fn peek_future(&self, core: CoreId, mode: PowerMode) -> (Bips, Watts) {
        let trace = self.traces[core.value()].trace(mode);
        let delta_s = self.params.delta.to_seconds().value();
        let steps = self.params.deltas_per_explore();
        let mut pos = self.positions[core.value()];
        let (mut bips_sum, mut power_sum) = (0.0, 0.0);
        for _ in 0..steps {
            let sample = trace.at(pos as u64);
            bips_sum += sample.bips;
            power_sum += sample.power_w;
            pos += sample.bips * 1.0e9 * delta_s;
        }
        (
            Bips::new(bips_sum / steps as f64),
            Watts::new(power_sum / steps as f64),
        )
    }

    /// Applies `new_modes` (paying the GALS transition stall if any core
    /// changes mode) and advances the simulation by one explore interval.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::CoreCountMismatch`] if `new_modes` covers the
    /// wrong number of cores, and [`GpmError::InvalidConfig`] if the run has
    /// already finished.
    pub fn advance_explore(&mut self, new_modes: &ModeCombination) -> Result<ExploreOutcome> {
        let mut outcome = ExploreOutcome::empty();
        self.advance_explore_into(new_modes, &mut outcome)?;
        Ok(outcome)
    }

    /// Like [`advance_explore`](Self::advance_explore), but writes into a
    /// caller-owned [`ExploreOutcome`] so the per-delta and per-core buffers
    /// are reused across intervals instead of reallocated — the control loop
    /// calls this thousands of times per run.
    ///
    /// # Errors
    ///
    /// Same as [`advance_explore`](Self::advance_explore).
    pub fn advance_explore_into(
        &mut self,
        new_modes: &ModeCombination,
        out: &mut ExploreOutcome,
    ) -> Result<()> {
        if new_modes.len() != self.cores() {
            return Err(GpmError::CoreCountMismatch {
                expected: self.cores(),
                actual: new_modes.len(),
            });
        }
        if self.finished {
            return Err(GpmError::InvalidConfig {
                parameter: "simulation",
                reason: "the run has already finished".into(),
            });
        }

        let old_modes = std::mem::replace(&mut self.modes, new_modes.clone());
        let stall = match self.params.transition {
            crate::TransitionBehavior::StallChip => (0..self.cores())
                .map(|i| {
                    self.params.dvfs.transition_time(
                        old_modes.mode(CoreId::new(i)),
                        new_modes.mode(CoreId::new(i)),
                    )
                })
                .fold(Micros::ZERO, Micros::max),
            crate::TransitionBehavior::Overlapped => Micros::ZERO,
        };
        self.history
            .mode_changes
            .push((Micros::new(self.now), self.modes.clone()));

        let delta_us = self.params.delta.value();
        let delta_s = self.params.delta.to_seconds().value();
        let steps = self.params.deltas_per_explore();

        let cores = self.cores();
        out.chip_power.clear();
        out.chip_bips.clear();
        out.chip_power.reserve(steps);
        out.chip_bips.reserve(steps);
        let mut core_energy = vec![0.0f64; cores]; // W·delta units
        let mut core_instr = vec![0.0f64; cores];
        let mut stall_left = stall.value();
        let mut completed_steps = 0usize;

        for _ in 0..steps {
            let stall_this = stall_left.min(delta_us);
            stall_left -= stall_this;
            let work_frac = (delta_us - stall_this) / delta_us;

            let mut chip_p = 0.0;
            let mut chip_b = 0.0;
            for i in 0..cores {
                let id = CoreId::new(i);
                let pos = self.positions[i] as u64;
                let run_sample = self.traces[i].trace(self.modes.mode(id)).at(pos);
                // During the stall the regulator is still slewing: charge
                // power at the previous mode's level, retire nothing.
                let stall_power = if stall_this > 0.0 {
                    self.traces[i].trace(old_modes.mode(id)).at(pos).power_w
                } else {
                    0.0
                };
                let power = stall_power * (1.0 - work_frac) + run_sample.power_w * work_frac;
                let bips = run_sample.bips * work_frac;
                let gained = run_sample.bips * 1.0e9 * delta_s * work_frac;

                self.positions[i] += gained;
                core_energy[i] += power;
                core_instr[i] += gained;
                chip_p += power;
                chip_b += bips;

                self.history.per_core_power[i].push(power);
                self.history.per_core_bips[i].push(bips);
            }
            if let Some(series) = self.history.chip_power.as_mut() {
                series.push(chip_p);
            }
            out.chip_power.push(chip_p);
            out.chip_bips.push(chip_b);
            self.now += delta_us;
            completed_steps += 1;

            // Termination: first benchmark completes, or the time cap hits.
            let done = (0..cores)
                .any(|i| self.positions[i] + 0.5 >= self.traces[i].total_instructions() as f64);
            let capped = self
                .params
                .max_duration
                .is_some_and(|cap| self.now >= cap.value());
            if done || capped {
                self.finished = true;
                break;
            }
        }

        let duration = Micros::new(completed_steps as f64 * delta_us);
        let duration_s = duration.to_seconds().value().max(f64::MIN_POSITIVE);
        let noise_std = self.params.sensor.power_noise_std;
        out.observed.clear();
        out.observed.reserve(cores);
        for i in 0..cores {
            let mean_power = core_energy[i] / completed_steps.max(1) as f64;
            let noisy = if noise_std > 0.0 {
                mean_power * (1.0 + noise_std * self.gaussian())
            } else {
                mean_power
            };
            out.observed.push(CoreObservation {
                core: CoreId::new(i),
                mode: self.modes.mode(CoreId::new(i)),
                power: Watts::new(noisy.max(0.0)),
                bips: Bips::new(core_instr[i] / duration_s / 1.0e9),
                instructions: core_instr[i] as u64,
            });
        }

        out.transition_stall = stall;
        out.duration = duration;
        out.finished = self.finished;
        Ok(())
    }

    /// Approximate standard normal via the Irwin–Hall sum of 12 uniforms
    /// (keeps `rand` as the only dependency).
    fn gaussian(&mut self) -> f64 {
        (0..12).map(|_| self.noise.gen::<f64>()).sum::<f64>() - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_trace::{ModeTrace, TraceSample};

    /// Builds a synthetic constant-rate trace set: `bips` at Turbo, linear
    /// frequency scaling across modes, cubic power scaling.
    fn constant_traces(name: &str, total: u64, bips: f64, power: f64) -> Arc<BenchmarkTraces> {
        let delta = Micros::new(50.0);
        let delta_s = delta.to_seconds().value();
        let traces = PowerMode::ALL
            .map(|mode| {
                let b = bips * mode.bips_scale_bound();
                let p = power * mode.power_scale();
                let per_delta = b * 1.0e9 * delta_s;
                let samples: Vec<TraceSample> = (1..=4000)
                    .map(|k| TraceSample {
                        instructions_end: (per_delta * k as f64) as u64,
                        power_w: p,
                        bips: b,
                    })
                    .collect();
                ModeTrace::new(mode, delta, samples)
            })
            .to_vec();
        Arc::new(
            BenchmarkTraces::new(name, total, traces).expect("constant traces are well-formed"),
        )
    }

    fn two_core_sim() -> TraceCmpSim {
        let traces = vec![
            constant_traces("fast", 2_000_000, 2.0, 20.0),
            constant_traces("slow", 2_000_000, 0.5, 12.0),
        ];
        TraceCmpSim::new(traces, SimParams::default()).expect("two-core sim builds")
    }

    #[test]
    fn all_turbo_interval_accounting() {
        let mut sim = two_core_sim();
        let turbo = ModeCombination::uniform(2, PowerMode::Turbo);
        let out = sim
            .advance_explore(&turbo)
            .expect("first interval advances");
        assert_eq!(out.duration, Micros::new(500.0));
        assert_eq!(out.transition_stall, Micros::ZERO);
        assert!((out.average_chip_power().value() - 32.0).abs() < 1e-6);
        assert!((out.total_bips().value() - 2.5).abs() < 1e-6);
        // 2 BIPS × 500 µs = 1M instructions on core 0.
        assert_eq!(sim.positions()[0], 1_000_000);
        assert_eq!(sim.now(), Micros::new(500.0));
    }

    #[test]
    fn eff2_scales_power_cubically_and_bips_linearly() {
        let mut sim = two_core_sim();
        // First interval establishes Turbo (no transition), second drops to
        // Eff2; observe the third (transition-free Eff2 steady state).
        let turbo = ModeCombination::uniform(2, PowerMode::Turbo);
        let eff2 = ModeCombination::uniform(2, PowerMode::Eff2);
        sim.advance_explore(&turbo)
            .expect("turbo interval advances");
        sim.advance_explore(&eff2)
            .expect("transition interval advances");
        let out = sim
            .advance_explore(&eff2)
            .expect("steady eff2 interval advances");
        assert!((out.average_chip_power().value() - 32.0 * 0.614125).abs() < 1e-6);
        assert!((out.total_bips().value() - 2.5 * 0.85).abs() < 1e-6);
    }

    #[test]
    fn transition_pays_stall_and_old_mode_power() {
        let mut sim = two_core_sim();
        let turbo = ModeCombination::uniform(2, PowerMode::Turbo);
        let eff2 = ModeCombination::uniform(2, PowerMode::Eff2);
        sim.advance_explore(&turbo)
            .expect("turbo interval advances");
        let out = sim
            .advance_explore(&eff2)
            .expect("transition interval advances");
        assert!((out.transition_stall.value() - 19.5).abs() < 1e-9);
        // Throughput is de-rated by roughly explore/(explore + stall)…
        // here the stall eats into the first delta: 19.5/500 of the work.
        let expected_bips = 2.5 * 0.85 * (500.0 - 19.5) / 500.0;
        assert!(
            (out.total_bips().value() - expected_bips).abs() < 1e-6,
            "got {}, expected {expected_bips}",
            out.total_bips().value()
        );
        // First delta's power blends old-mode (Turbo) stall power with
        // Eff2 run power and is therefore *higher* than steady Eff2.
        let steady = 32.0 * 0.614125;
        assert!(out.chip_power[0] > steady + 1.0);
        assert!((out.chip_power[1] - steady).abs() < 1e-6);
    }

    #[test]
    fn overlapped_transitions_are_free() {
        let params = SimParams {
            transition: crate::TransitionBehavior::Overlapped,
            ..SimParams::default()
        };
        let traces = vec![
            constant_traces("fast", 100_000_000, 2.0, 20.0),
            constant_traces("slow", 100_000_000, 0.5, 12.0),
        ];
        let mut sim = TraceCmpSim::new(traces, params).expect("overlapped-transition sim builds");
        sim.advance_explore(&ModeCombination::uniform(2, PowerMode::Turbo))
            .expect("turbo interval advances");
        let out = sim
            .advance_explore(&ModeCombination::uniform(2, PowerMode::Eff2))
            .expect("transition interval advances");
        assert_eq!(out.transition_stall, Micros::ZERO);
        // Full Eff2 throughput from the first delta: no de-rating at all.
        assert!((out.total_bips().value() - 2.5 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn termination_on_first_completion() {
        let traces = vec![
            constant_traces("short", 300_000, 2.0, 20.0), // completes in 150 µs
            constant_traces("long", 1_000_000_000, 0.5, 12.0),
        ];
        let mut sim =
            TraceCmpSim::new(traces, SimParams::default()).expect("termination sim builds");
        let out = sim
            .advance_explore(&ModeCombination::uniform(2, PowerMode::Turbo))
            .expect("interval up to completion advances");
        assert!(out.finished);
        assert!(sim.finished());
        // 300k instructions at 2 BIPS = 150 µs = 3 deltas.
        assert_eq!(out.duration, Micros::new(150.0));
        assert_eq!(out.chip_power.len(), 3);
        // Advancing further is an error.
        assert!(sim
            .advance_explore(&ModeCombination::uniform(2, PowerMode::Turbo))
            .is_err());
    }

    #[test]
    fn max_duration_caps_run() {
        let params = SimParams {
            max_duration: Some(Micros::new(200.0)),
            ..SimParams::default()
        };
        let traces = vec![constant_traces("x", u64::MAX / 2, 1.0, 10.0)];
        let mut sim = TraceCmpSim::new(traces, params).expect("capped sim builds");
        let out = sim
            .advance_explore(&ModeCombination::uniform(1, PowerMode::Turbo))
            .expect("capped interval advances");
        assert!(out.finished);
        assert_eq!(out.duration, Micros::new(200.0));
    }

    #[test]
    fn wrong_core_count_is_rejected() {
        let mut sim = two_core_sim();
        let err = sim.advance_explore(&ModeCombination::uniform(3, PowerMode::Turbo));
        assert!(matches!(
            err,
            Err(GpmError::CoreCountMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn peek_future_matches_actual_constant_trace() {
        let sim = two_core_sim();
        let (bips, power) = sim.peek_future(CoreId::new(0), PowerMode::Eff1);
        assert!((bips.value() - 2.0 * 0.95).abs() < 1e-9);
        assert!((power.value() - 20.0 * 0.857375).abs() < 1e-9);
    }

    #[test]
    fn power_envelope_is_sum_of_turbo_peaks() {
        let sim = two_core_sim();
        assert!((sim.power_envelope().value() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn history_records_everything() {
        let mut sim = two_core_sim();
        let turbo = ModeCombination::uniform(2, PowerMode::Turbo);
        let eff1 = ModeCombination::uniform(2, PowerMode::Eff1);
        sim.advance_explore(&turbo)
            .expect("turbo interval advances");
        sim.advance_explore(&eff1).expect("eff1 interval advances");
        let h = sim.history();
        assert_eq!(h.mode_changes.len(), 2);
        assert_eq!(h.mode_changes[1].0, Micros::new(500.0));
        assert_eq!(
            h.chip_power
                .as_ref()
                .expect("history retains chip power")
                .len(),
            20
        );
        assert_eq!(h.per_core_power.len(), 2);
        assert_eq!(h.per_core_bips[0].len(), 20);
    }

    #[test]
    fn sensor_noise_perturbs_power_only() {
        let params = SimParams {
            sensor: crate::SensorModel {
                power_noise_std: 0.05,
                seed: 7,
            },
            ..SimParams::default()
        };
        let traces = vec![constant_traces("x", u64::MAX / 2, 1.0, 10.0)];
        let mut sim = TraceCmpSim::new(traces, params).expect("noisy-sensor sim builds");
        let turbo = ModeCombination::uniform(1, PowerMode::Turbo);
        let outs: Vec<f64> = (0..8)
            .map(|_| {
                sim.advance_explore(&turbo)
                    .expect("noisy interval advances")
                    .observed[0]
                    .power
                    .value()
            })
            .collect();
        let distinct = outs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "noise should vary observations: {outs:?}");
        // BIPS observations stay exact.
        let (b, _) = sim.peek_future(CoreId::new(0), PowerMode::Turbo);
        assert!((b.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cores_rejected() {
        assert!(TraceCmpSim::new(vec![], SimParams::default()).is_err());
    }
}
