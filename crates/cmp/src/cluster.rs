//! Cluster topology and the inter-cluster interconnect model for wide CMPs.
//!
//! The flat [`FullCmpSim`](crate::FullCmpSim) funnels every core's L2
//! traffic through one [`SharedL2`](crate::SharedL2), which makes phase 2
//! of the two-phase quantum protocol an inherently serial global merge. At
//! 64–256 cores that merge dominates the run. The clustered configuration
//! described by [`ClusterTopology`] breaks the chip into K clusters of
//! 8–16 cores, each with a *private* per-cluster L2; only misses leave the
//! cluster, crossing the global interconnect modelled by [`Interconnect`]
//! on their way to memory. Both phases of the protocol then run per
//! cluster in parallel, and the only serialised work left is summing the
//! clusters' miss counts into the interconnect's window accounting.
//!
//! The degenerate configuration — one cluster, zero-latency interconnect —
//! is arithmetically identical to the flat simulator: the per-miss penalty
//! is `hop + queue = 0.0`, and adding `0.0` to a finite positive latency is
//! exact in IEEE 754. `tests/hier_equivalence.rs` pins that bit-identity
//! against the flat path's golden hashes.

use std::ops::Range;

use gpm_types::{GpmError, Result};
use serde::{Deserialize, Serialize};

use crate::L2Bus;

/// How a chip's cores are grouped into L2-sharing clusters.
///
/// # Examples
///
/// ```
/// use gpm_cmp::ClusterTopology;
///
/// let topo = ClusterTopology::for_cores(64, 8)?;
/// assert_eq!(topo.clusters(), 8);
/// assert_eq!(topo.core_range(1), 8..16);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterTopology {
    clusters: usize,
    cores_per_cluster: usize,
}

impl ClusterTopology {
    /// Builds a topology of `clusters` × `cores_per_cluster` cores.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when either count is zero.
    pub fn new(clusters: usize, cores_per_cluster: usize) -> Result<Self> {
        if clusters == 0 || cores_per_cluster == 0 {
            return Err(GpmError::InvalidConfig {
                parameter: "topology",
                reason: format!(
                    "need at least one cluster and one core per cluster, \
                     got {clusters}×{cores_per_cluster}"
                ),
            });
        }
        Ok(Self {
            clusters,
            cores_per_cluster,
        })
    }

    /// The degenerate single-cluster topology: all `cores` share one L2,
    /// exactly like the flat simulator.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when `cores` is zero.
    pub fn flat(cores: usize) -> Result<Self> {
        Self::new(1, cores)
    }

    /// Partitions `cores` into clusters of `cores_per_cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when the core count is zero or
    /// not divisible by the cluster size.
    pub fn for_cores(cores: usize, cores_per_cluster: usize) -> Result<Self> {
        if cores_per_cluster == 0 || !cores.is_multiple_of(cores_per_cluster) {
            return Err(GpmError::InvalidConfig {
                parameter: "cores",
                reason: format!("{cores} cores do not divide into clusters of {cores_per_cluster}"),
            });
        }
        Self::new(cores / cores_per_cluster, cores_per_cluster)
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Cores per cluster.
    #[must_use]
    pub fn cores_per_cluster(&self) -> usize {
        self.cores_per_cluster
    }

    /// Total cores on the chip.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// The contiguous core-index range owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn core_range(&self, cluster: usize) -> Range<usize> {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        cluster * self.cores_per_cluster..(cluster + 1) * self.cores_per_cluster
    }
}

/// Timing of the global inter-cluster interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Fixed traversal latency a cluster-L2 miss pays to reach memory
    /// across the global fabric, in nanoseconds.
    pub hop_latency_ns: f64,
    /// Fabric occupancy per crossing miss in nanoseconds — the bounded-
    /// bandwidth knob that turns aggregate miss traffic into queueing
    /// delay, exactly like [`SharedL2Config::service_ns`] does for a
    /// cluster's bus.
    ///
    /// [`SharedL2Config::service_ns`]: crate::SharedL2Config::service_ns
    pub service_ns: f64,
}

impl InterconnectConfig {
    /// A free interconnect: zero latency, infinite bandwidth. With one
    /// cluster this reproduces the flat simulator bit-for-bit.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            hop_latency_ns: 0.0,
            service_ns: 0.0,
        }
    }

    /// Validates the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] unless both are finite and
    /// non-negative.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("hop_latency_ns", self.hop_latency_ns),
            ("service_ns", self.service_ns),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(GpmError::InvalidConfig {
                    parameter: "interconnect",
                    reason: format!("{name} must be finite and non-negative, got {v}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for InterconnectConfig {
    /// A mesh-class fabric: 12 ns traversal, 0.5 ns occupancy per miss
    /// (several times the aggregate bandwidth of one cluster bus — wide
    /// links, but bounded).
    fn default() -> Self {
        Self {
            hop_latency_ns: 12.0,
            service_ns: 0.5,
        }
    }
}

/// The global interconnect: a fixed hop latency plus the same windowed
/// M/D/1 queueing model the per-cluster buses use ([`L2Bus`]).
///
/// During a quantum the model is *read-only* — every cluster charges its
/// misses the penalty frozen at the last window boundary — which is what
/// lets the per-cluster replays run in parallel. The serial phase then
/// feeds the clusters' summed miss counts into the window accounting
/// ([`note_traffic`](Interconnect::note_traffic)) and closes the window;
/// the sum over unsigned counts is order-independent, so the protocol
/// stays bit-identical for every worker count.
#[derive(Debug, Clone)]
pub struct Interconnect {
    hop_latency_ns: f64,
    fabric: L2Bus,
}

impl Interconnect {
    /// Builds the interconnect model.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] on invalid timing parameters.
    pub fn new(config: InterconnectConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            hop_latency_ns: config.hop_latency_ns,
            fabric: L2Bus::new(config.service_ns),
        })
    }

    /// Extra nanoseconds a cluster-L2 miss pays this window to cross the
    /// fabric: hop latency plus the current queueing delay.
    #[must_use]
    pub fn penalty_ns(&self) -> f64 {
        self.hop_latency_ns + self.fabric.current_queue_ns()
    }

    /// Accounts `misses` crossings in the current observation window.
    pub fn note_traffic(&mut self, misses: u64) {
        self.fabric.note_accesses(misses);
    }

    /// Closes the current observation window of `window_ns` wall time: the
    /// window's fabric utilisation determines the queueing delay applied
    /// to the next window's crossings.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn end_window(&mut self, window_ns: f64) {
        self.fabric.end_window(window_ns);
    }

    /// Mean fabric utilisation over all closed windows.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        self.fabric.average_utilization()
    }

    /// Highest single-window fabric utilisation seen.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.fabric.peak_utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_partitions_cores() {
        let topo = ClusterTopology::for_cores(64, 8).expect("64 divides by 8");
        assert_eq!(topo.clusters(), 8);
        assert_eq!(topo.cores_per_cluster(), 8);
        assert_eq!(topo.cores(), 64);
        assert_eq!(topo.core_range(0), 0..8);
        assert_eq!(topo.core_range(7), 56..64);
    }

    #[test]
    fn topology_rejects_degenerate_shapes() {
        assert!(ClusterTopology::new(0, 8).is_err());
        assert!(ClusterTopology::new(4, 0).is_err());
        assert!(ClusterTopology::for_cores(20, 8).is_err());
        assert!(ClusterTopology::for_cores(8, 0).is_err());
        assert!(ClusterTopology::flat(0).is_err());
        let flat = ClusterTopology::flat(16).expect("flat topology");
        assert_eq!(flat.clusters(), 1);
        assert_eq!(flat.core_range(0), 0..16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_range_bounds_checked() {
        let _ = ClusterTopology::for_cores(16, 8)
            .expect("16 divides by 8")
            .core_range(2);
    }

    #[test]
    fn zero_interconnect_is_free() {
        let mut icn = Interconnect::new(InterconnectConfig::zero()).expect("zero config valid");
        assert_eq!(icn.penalty_ns(), 0.0);
        icn.note_traffic(1_000_000);
        icn.end_window(5000.0);
        assert_eq!(icn.penalty_ns(), 0.0);
        assert_eq!(icn.average_utilization(), 0.0);
    }

    #[test]
    fn saturated_fabric_charges_bounded_queue() {
        let mut icn = Interconnect::new(InterconnectConfig::default()).expect("default valid");
        assert_eq!(icn.penalty_ns(), 12.0, "first window is queue-free");
        for _ in 0..4 {
            icn.note_traffic(1_000_000); // demand far over capacity
            icn.end_window(5000.0);
        }
        assert!(icn.peak_utilization() <= 0.98);
        assert!(icn.penalty_ns() > 12.0);
        assert!(icn.penalty_ns().is_finite());
    }

    #[test]
    fn utilization_follows_traffic() {
        let mut icn = Interconnect::new(InterconnectConfig::default()).expect("default valid");
        // 2000 crossings × 0.5 ns in a 5000 ns window: ρ = 0.2.
        icn.note_traffic(2000);
        icn.end_window(5000.0);
        assert!((icn.average_utilization() - 0.2).abs() < 1e-9);
        // M/D/1 wait on top of the hop latency.
        let wait = 0.5 * 0.2 / (2.0 * 0.8);
        assert!((icn.penalty_ns() - (12.0 + wait)).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        assert!(InterconnectConfig::zero().validate().is_ok());
        assert!(InterconnectConfig::default().validate().is_ok());
        for bad in [
            InterconnectConfig {
                hop_latency_ns: -1.0,
                ..InterconnectConfig::zero()
            },
            InterconnectConfig {
                service_ns: f64::NAN,
                ..InterconnectConfig::zero()
            },
            InterconnectConfig {
                hop_latency_ns: f64::INFINITY,
                ..InterconnectConfig::zero()
            },
        ] {
            assert!(Interconnect::new(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
