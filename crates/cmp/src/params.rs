//! Simulation-loop parameters.

use gpm_power::DvfsParams;
use gpm_types::{GpmError, Micros, Result};
use serde::{Deserialize, Serialize};

/// What happens to execution while a core's voltage regulator slews
/// between modes (Section 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TransitionBehavior {
    /// The paper's conservative assumption (and our default): no benchmark
    /// execution during mode transitions, CPU power still consumed, and the
    /// multiple-clock-domain implementation stalls *all* cores for the
    /// longest per-core transition.
    #[default]
    StallChip,
    /// The optimistic alternative the paper cites (Brock & Rajamani; Clark
    /// et al.): execution continues through the voltage slew, so
    /// transitions are free. Brackets the transition-overhead impact from
    /// below; see the `ablation_transition_overlap` bench.
    Overlapped,
}

/// Imperfection model for the on-core current sensors feeding the global
/// manager (the paper assumes Foxton-style sensors; the noise knob is our
/// ablation extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorModel {
    /// Relative standard deviation of multiplicative white noise applied to
    /// observed per-core power (0 = ideal sensors).
    pub power_noise_std: f64,
    /// Seed for the deterministic noise stream.
    pub seed: u64,
}

impl Default for SensorModel {
    fn default() -> Self {
        Self {
            power_noise_std: 0.0,
            seed: 0x5e4_50b,
        }
    }
}

/// Parameters of the trace-based CMP simulation loop.
///
/// Defaults reproduce the paper: `delta_sim_time` 50 µs, `explore_time`
/// 500 µs, the linear three-mode DVFS scenario, ideal sensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Statistics re-evaluation interval (`delta_sim_time`).
    pub delta: Micros,
    /// Mode-setting interval (`explore_time`); must be a positive multiple
    /// of `delta`.
    pub explore: Micros,
    /// DVFS operating points and slew rate.
    pub dvfs: DvfsParams,
    /// Sensor imperfection model.
    pub sensor: SensorModel,
    /// Execution behaviour during DVFS transitions.
    pub transition: TransitionBehavior,
    /// Safety cap on simulated time; `None` runs to benchmark completion.
    pub max_duration: Option<Micros>,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            delta: Micros::new(50.0),
            explore: Micros::new(500.0),
            dvfs: DvfsParams::paper(),
            sensor: SensorModel::default(),
            transition: TransitionBehavior::default(),
            max_duration: None,
        }
    }
}

impl SimParams {
    /// Number of `delta` steps per explore interval.
    #[must_use]
    pub fn deltas_per_explore(&self) -> usize {
        (self.explore.value() / self.delta.value()).round() as usize
    }

    /// Validates interval relationships.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] when `delta` is non-positive or
    /// `explore` is not a positive multiple of `delta`.
    pub fn validate(&self) -> Result<()> {
        if self.delta.value() <= 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "delta",
                reason: "must be positive".into(),
            });
        }
        let ratio = self.explore.value() / self.delta.value();
        if ratio < 1.0 - 1e-9 || (ratio - ratio.round()).abs() > 1e-9 {
            return Err(GpmError::InvalidConfig {
                parameter: "explore",
                reason: format!(
                    "explore ({}) must be a positive multiple of delta ({})",
                    self.explore, self.delta
                ),
            });
        }
        if self.sensor.power_noise_std < 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "sensor",
                reason: "noise std must be non-negative".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = SimParams::default();
        assert_eq!(p.delta, Micros::new(50.0));
        assert_eq!(p.explore, Micros::new(500.0));
        assert_eq!(p.deltas_per_explore(), 10);
        assert_eq!(p.transition, TransitionBehavior::StallChip);
        p.validate().unwrap();
    }

    #[test]
    fn rejects_non_multiple_explore() {
        let p = SimParams {
            explore: Micros::new(120.0),
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_zero_delta() {
        let p = SimParams {
            delta: Micros::ZERO,
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_negative_noise() {
        let p = SimParams {
            sensor: SensorModel {
                power_noise_std: -0.1,
                seed: 0,
            },
            ..SimParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn explore_equal_delta_is_valid() {
        let p = SimParams {
            delta: Micros::new(50.0),
            explore: Micros::new(50.0),
            ..SimParams::default()
        };
        p.validate().unwrap();
        assert_eq!(p.deltas_per_explore(), 1);
    }
}
