//! The full-CMP validation simulator: real core models sharing an L2.

use gpm_microarch::{CoreConfig, CoreModel, IntervalStats};
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Bips, GpmError, Micros, ModeCombination, PowerMode, Result, Watts};
use gpm_workloads::{WorkloadCombo, WorkloadStream};

use crate::{SharedL2, SharedL2Config};

/// Address-space separation between cores' data regions, so co-scheduled
/// benchmarks do not alias in the shared L2.
const CORE_ADDR_STRIDE: u64 = 1 << 36;

/// Per-core results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCoreOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// The mode the core ran in.
    pub mode: PowerMode,
    /// Instructions retired.
    pub instructions: u64,
    /// Average power over the run.
    pub power: Watts,
    /// Average throughput over the run.
    pub bips: Bips,
    /// L2 misses observed by this core.
    pub l2_misses: u64,
}

/// Aggregate results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct FullCmpOutcome {
    /// One entry per core.
    pub per_core: Vec<PerCoreOutcome>,
    /// Wall-clock duration simulated.
    pub duration: Micros,
    /// Mean shared-bus utilisation over the run.
    pub l2_utilization: f64,
}

impl FullCmpOutcome {
    /// Total chip power (sum of per-core averages).
    #[must_use]
    pub fn chip_power(&self) -> Watts {
        self.per_core.iter().map(|c| c.power).sum()
    }

    /// Total chip throughput.
    #[must_use]
    pub fn chip_bips(&self) -> Bips {
        Bips::new(self.per_core.iter().map(|c| c.bips.value()).sum())
    }
}

/// A time-quantum-synchronised multi-core simulation over the real
/// `gpm-microarch` core models and a [`SharedL2`].
///
/// Cores advance round-robin in short wall-clock quanta (5 µs by default);
/// within a quantum each core resolves its L1 misses against the shared L2,
/// whose bus model converts overlapping misses into queueing delay. Per-core
/// DVFS is supported by clocking each core model at its mode's frequency —
/// the quantum is measured in wall time, so cores stay aligned across clock
/// domains.
///
/// This is the validation counterpart of
/// [`TraceCmpSim`](crate::TraceCmpSim), mirroring the paper's full-CMP
/// Turandot implementation "with time-driven L2 and thread synchronisation".
#[derive(Debug)]
pub struct FullCmpSim {
    cores: Vec<CoreModel>,
    streams: Vec<WorkloadStream>,
    names: Vec<String>,
    modes: ModeCombination,
    shared: SharedL2,
    power: PowerModel,
    dvfs: DvfsParams,
    quantum: Micros,
}

impl FullCmpSim {
    /// Builds a full-CMP simulation of `combo` with fixed per-core `modes`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::CoreCountMismatch`] when `modes` does not cover
    /// the combo and propagates configuration validation failures.
    pub fn new(
        combo: &WorkloadCombo,
        modes: &ModeCombination,
        core_config: &CoreConfig,
        power: PowerModel,
        dvfs: DvfsParams,
    ) -> Result<Self> {
        if modes.len() != combo.cores() {
            return Err(GpmError::CoreCountMismatch {
                expected: combo.cores(),
                actual: modes.len(),
            });
        }
        core_config.validate()?;
        let mut cores = Vec::with_capacity(combo.cores());
        let mut streams = Vec::with_capacity(combo.cores());
        let mut names = Vec::with_capacity(combo.cores());
        for (i, &bench) in combo.benchmarks().iter().enumerate() {
            let mode = modes.mode(gpm_types::CoreId::new(i));
            cores.push(CoreModel::new(core_config, dvfs.frequency(mode)));
            // Distinct address bases and seed salts: four mcf instances must
            // not literally share data.
            streams.push(
                bench
                    .profile()
                    .stream_with(i as u64 * CORE_ADDR_STRIDE, i as u64),
            );
            names.push(bench.name().to_owned());
        }
        let shared = SharedL2::new(SharedL2Config {
            cache: core_config.l2,
            l2_latency_ns: core_config.memory.l2_latency_ns,
            memory_latency_ns: core_config.memory.memory_latency_ns,
            ..SharedL2Config::default()
        });
        Ok(Self {
            cores,
            streams,
            names,
            modes: modes.clone(),
            shared,
            power,
            dvfs,
            quantum: Micros::new(5.0),
        })
    }

    /// Overrides the synchronisation quantum (default 5 µs). Smaller values
    /// interleave the cores' L2 traffic more finely at simulation-speed
    /// cost.
    pub fn set_quantum(&mut self, quantum: Micros) {
        assert!(quantum.value() > 0.0, "quantum must be positive");
        self.quantum = quantum;
    }

    /// Runs all cores for `duration` of wall time and reports per-core
    /// averages.
    pub fn run(&mut self, duration: Micros) -> FullCmpOutcome {
        let quanta = (duration.value() / self.quantum.value()).ceil() as usize;
        let n = self.cores.len();
        let mut totals: Vec<IntervalStats> = vec![IntervalStats::default(); n];
        let mut energy_j = vec![0.0f64; n];

        for _ in 0..quanta {
            let window_ns = self.quantum.value() * 1.0e3;
            for i in 0..n {
                let mode = self.modes.mode(gpm_types::CoreId::new(i));
                let freq = self.dvfs.frequency(mode);
                let cycles = freq.cycles_in(self.quantum).value();
                // `run_cycles_with` is generic over the memory subsystem:
                // passing the shared L2 concretely monomorphizes the access
                // path (no per-miss virtual dispatch).
                let stats =
                    self.cores[i].run_cycles_with(&mut self.streams[i], &mut self.shared, cycles);
                let power = self.power.power(&stats.activity(), mode);
                let secs = stats.cycles as f64 / freq.value();
                energy_j[i] += power.value() * secs;
                totals[i].merge(&stats);
            }
            self.shared.end_window(window_ns);
        }

        let per_core = (0..n)
            .map(|i| {
                let mode = self.modes.mode(gpm_types::CoreId::new(i));
                let freq = self.dvfs.frequency(mode);
                let secs = totals[i].cycles as f64 / freq.value();
                PerCoreOutcome {
                    benchmark: self.names[i].clone(),
                    mode,
                    instructions: totals[i].instructions,
                    power: Watts::new(energy_j[i] / secs),
                    bips: Bips::new(totals[i].instructions as f64 / secs / 1.0e9),
                    l2_misses: totals[i].l2_misses,
                }
            })
            .collect();

        FullCmpOutcome {
            per_core,
            duration,
            l2_utilization: self.shared.average_utilization(),
        }
    }

    /// The shared L2 (for diagnostics).
    #[must_use]
    pub fn shared_l2(&self) -> &SharedL2 {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn run_combo(combo: &WorkloadCombo, ms: f64) -> FullCmpOutcome {
        let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        sim.run(Micros::from_millis(ms))
    }

    #[test]
    fn runs_and_reports_per_core() {
        let out = run_combo(&combos::gcc_mesa(), 0.5);
        assert_eq!(out.per_core.len(), 2);
        assert_eq!(out.per_core[0].benchmark, "gcc");
        assert!(out.per_core.iter().all(|c| c.instructions > 10_000));
        assert!(out.chip_power().value() > 10.0);
        assert!(out.chip_bips().value() > 0.5);
    }

    #[test]
    fn memory_bound_combo_contends_in_shared_l2() {
        // Four memory-bound benchmarks: their combined warm sets overflow
        // the shared L2 and the bus queues — per-core throughput drops
        // relative to a private-L2 single-core run of the same stream.
        let out = run_combo(&combos::mcf_mcf_art_art(), 1.0);
        assert!(
            out.l2_utilization > 0.02,
            "bus contention expected, utilisation {}",
            out.l2_utilization
        );

        // Single-core reference for mcf (core 0).
        use gpm_microarch::CoreModel;
        let mut solo = CoreModel::new(
            &CoreConfig::power4(),
            DvfsParams::paper().frequency(PowerMode::Turbo),
        );
        let mut stream = gpm_workloads::SpecBenchmark::Mcf
            .profile()
            .stream_with(0, 0);
        let stats = solo.run_cycles(&mut stream, 1_000_000);
        let solo_bips = stats.bips_at(DvfsParams::paper().frequency(PowerMode::Turbo));

        let cmp_bips = out.per_core[0].bips;
        assert!(
            cmp_bips.value() < solo_bips.value(),
            "shared L2 must slow mcf: {} vs solo {}",
            cmp_bips.value(),
            solo_bips.value()
        );
    }

    #[test]
    fn cpu_bound_combo_contends_less_than_memory_bound() {
        let cpu = run_combo(&combos::sixtrack_gap_perlbmk_wupwise(), 0.5);
        let mem = run_combo(&combos::mcf_mcf_art_art(), 0.5);
        assert!(
            cpu.l2_utilization < 0.5,
            "CPU-bound combo should not saturate the bus: {}",
            cpu.l2_utilization
        );
        assert!(
            mem.l2_utilization > cpu.l2_utilization,
            "memory-bound traffic must dominate: {} vs {}",
            mem.l2_utilization,
            cpu.l2_utilization
        );
    }

    #[test]
    fn per_core_dvfs_modes_supported() {
        let combo = combos::gcc_mesa();
        let mixed = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff2]);
        let mut sim = FullCmpSim::new(
            &combo,
            &mixed,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        let out = sim.run(Micros::from_millis(0.5));
        assert_eq!(out.per_core[1].mode, PowerMode::Eff2);
        // The Eff2 core burns markedly less power per unit activity.
        assert!(out.per_core[1].power < out.per_core[0].power);
    }

    #[test]
    fn mode_count_mismatch_rejected() {
        let err = FullCmpSim::new(
            &combos::gcc_mesa(),
            &ModeCombination::uniform(3, PowerMode::Turbo),
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        );
        assert!(matches!(err, Err(GpmError::CoreCountMismatch { .. })));
    }
}
