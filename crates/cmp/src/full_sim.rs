//! The full-CMP validation simulator: real core models sharing an L2.

use std::sync::Arc;

use gpm_microarch::{CoreConfig, DeferredL2, IntervalStats, LaneBatch};
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Bips, GpmError, Hertz, Micros, ModeCombination, PowerMode, Result, Watts};
use gpm_workloads::{WorkloadCombo, WorkloadStream};

use crate::{SharedL2, SharedL2Config};

/// Address-space separation between cores' data regions, so co-scheduled
/// benchmarks do not alias in the shared L2.
const CORE_ADDR_STRIDE: u64 = 1 << 36;

/// Per-core results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCoreOutcome {
    /// Benchmark name (shared, not re-allocated per outcome).
    pub benchmark: Arc<str>,
    /// The mode the core ran in.
    pub mode: PowerMode,
    /// Instructions retired.
    pub instructions: u64,
    /// Average power over the run.
    pub power: Watts,
    /// Average throughput over the run.
    pub bips: Bips,
    /// L2 misses observed by this core.
    pub l2_misses: u64,
}

/// Aggregate results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct FullCmpOutcome {
    /// One entry per core.
    pub per_core: Vec<PerCoreOutcome>,
    /// Wall-clock duration simulated.
    pub duration: Micros,
    /// Mean shared-bus utilisation over the run.
    pub l2_utilization: f64,
}

impl FullCmpOutcome {
    /// Total chip power (sum of per-core averages).
    #[must_use]
    pub fn chip_power(&self) -> Watts {
        self.per_core.iter().map(|c| c.power).sum()
    }

    /// Total chip throughput.
    #[must_use]
    pub fn chip_bips(&self) -> Bips {
        Bips::new(self.per_core.iter().map(|c| c.bips.value()).sum())
    }
}

/// Per-core bookkeeping that lives *outside* the lane batch: identity,
/// clocking, the correction-credit carry of the two-phase protocol, and the
/// run accumulators. One `LaneAccounting` per core, in core order, split
/// across the [`LaneGroup`]s.
#[derive(Debug)]
struct LaneAccounting {
    benchmark: Arc<str>,
    mode: PowerMode,
    freq: Hertz,
    /// Core cycles per synchronisation quantum at this lane's frequency;
    /// recomputed when a run starts (the quantum is configurable).
    cycles_per_quantum: u64,
    /// Signed correction credit in nanoseconds: positive when the replay
    /// discovered more latency than phase 1 charged (repaid as stall
    /// cycles), negative when phase 1 overcharged (offsets future debt).
    pending_ns: f64,
    /// Bounds for the per-access charge predictor (array-hit latency up to
    /// hit + memory + worst-case queueing delay).
    charge_min_ns: f64,
    charge_max_ns: f64,
    /// Replay scratch: total actual latency of this lane's requests this
    /// quantum.
    actual_ns: f64,
    /// Replay scratch: merge cursor into the sorted request log.
    cursor: usize,
    /// Run accumulators, reused across `run` calls.
    total: IntervalStats,
    energy_j: f64,
}

impl LaneAccounting {
    /// Settles this quantum's replay against what phase 1 charged: the
    /// signed difference joins the correction credit, and the charge
    /// predictor moves to the quantum's observed mean latency so the next
    /// recording timeline already runs at a realistic speed (preserving
    /// the core model's latency overlap instead of converting all miss
    /// latency into un-overlappable stalls).
    fn bank_correction(&mut self, deferred: &mut DeferredL2) {
        let requests = self.cursor;
        let charged_ns = requests as f64 * deferred.charge_ns();
        self.pending_ns += self.actual_ns - charged_ns;
        // A run of overcharged quanta must not accumulate unbounded credit:
        // a core can at most have been one quantum ahead of reality.
        let quantum_ns = self.cycles_per_quantum as f64 * 1.0e9 / self.freq.value();
        self.pending_ns = self.pending_ns.max(-quantum_ns);
        if requests > 0 {
            let mean = self.actual_ns / requests as f64;
            deferred.set_charge_ns(mean.clamp(self.charge_min_ns, self.charge_max_ns));
        }
    }

    fn outcome(&self) -> PerCoreOutcome {
        let secs = self.total.cycles as f64 / self.freq.value();
        PerCoreOutcome {
            benchmark: Arc::clone(&self.benchmark),
            mode: self.mode,
            instructions: self.total.instructions,
            power: Watts::new(self.energy_j / secs),
            bips: Bips::new(self.total.instructions as f64 / secs / 1.0e9),
            l2_misses: self.total.l2_misses,
        }
    }
}

/// A contiguous slice of the combo's cores advanced through one
/// [`LaneBatch`] kernel call per quantum. Phase 1 hands each group to
/// exactly one pool worker; within the group the kernel interleaves the
/// lanes op-by-op, so a single worker still overlaps the cores'
/// independent dependency chains. Phase 2 walks all groups' lanes on a
/// single thread.
#[derive(Debug)]
struct LaneGroup {
    batch: LaneBatch,
    streams: Vec<WorkloadStream>,
    deferred: Vec<DeferredL2>,
    acct: Vec<LaneAccounting>,
    /// Kernel scratch, one slot per lane (cycle targets and captured
    /// per-quantum stats), retained across quanta to avoid reallocation.
    targets: Vec<u64>,
    seg: Vec<IntervalStats>,
}

impl LaneGroup {
    /// Phase 1: step every lane of the group one quantum. Per lane: repay
    /// any positive correction credit as stall cycles, then run the
    /// remainder of the quantum against the recording L2 — all lanes
    /// through one `step_lanes` call — and finally sort the request logs
    /// so phase 2 can k-way merge.
    fn step_quantum(&mut self, power: &PowerModel) {
        let Self {
            batch,
            streams,
            deferred,
            acct,
            targets,
            seg,
        } = self;
        for (lane, acct) in acct.iter_mut().enumerate() {
            let quantum_cycles = acct.cycles_per_quantum;
            let stall = if acct.pending_ns > 0.0 {
                acct.freq.cycles_for_ns(acct.pending_ns).min(quantum_cycles)
            } else {
                0
            };
            if stall > 0 {
                acct.pending_ns -= stall as f64 * 1.0e9 / acct.freq.value();
                batch.apply_stall_cycles(lane, stall);
            }
            deferred[lane].reset();
            acct.actual_ns = 0.0;
            acct.cursor = 0;
            targets[lane] = quantum_cycles - stall;
            seg[lane] = IntervalStats::default();
        }

        batch.step_lanes(streams, deferred, targets, |lane, stats| {
            seg[lane] = *stats;
            None
        });

        for (lane, acct) in acct.iter_mut().enumerate() {
            let mut stats = seg[lane];
            stats.cycles += acct.cycles_per_quantum - targets[lane];
            let power = power.power(&stats.activity(), acct.mode);
            let secs = stats.cycles as f64 / acct.freq.value();
            acct.energy_j += power.value() * secs;
            acct.total.merge(&stats);
            deferred[lane].sort_log();
        }
    }
}

/// Phase 2: merge-replay all lanes' sorted request logs against the real
/// shared L2 in global `(timestamp, core-id)` order.
///
/// The deterministic tie-break — strictly-smaller timestamp wins, equal
/// timestamps go to the lower core id — makes the replay order (and hence
/// the shared tag-array state, queue accounting and per-core corrections)
/// independent of how phase 1 was scheduled *and* of how the cores were
/// grouped into lane batches. Each lane accumulates the actual latency of
/// its requests (queueing delay, and memory latency when the shared array
/// misses); [`LaneAccounting::bank_correction`] settles that against what
/// phase 1 charged. Misses are credited back to the owning core's
/// counters. `lanes` must be in core order.
fn replay_quantum(lanes: &mut [(&mut DeferredL2, &mut LaneAccounting)], shared: &mut SharedL2) {
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, (deferred, acct)) in lanes.iter().enumerate() {
            if let Some(req) = deferred.log().get(acct.cursor) {
                let earlier = best.is_none_or(|(_, t)| req.now_ns < t);
                if earlier {
                    best = Some((i, req.now_ns));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (deferred, acct) = &mut lanes[i];
        let req = deferred.log()[acct.cursor];
        acct.cursor += 1;
        let (actual_ns, hit) = shared.replay_access(req.addr);
        acct.actual_ns += actual_ns;
        if !hit {
            acct.total.l2_misses += 1;
        }
    }
    for (deferred, acct) in lanes {
        acct.bank_correction(deferred);
    }
}

/// A time-quantum-synchronised multi-core simulation over the real
/// `gpm-microarch` core models and a [`SharedL2`].
///
/// Cores advance in short wall-clock quanta (5 µs by default) under a
/// two-phase protocol. **Phase 1** steps every core for one quantum: the
/// cores are partitioned into contiguous [`LaneGroup`]s — one per worker
/// the `gpm_par` pool can supply — and each group advances all its lanes
/// through a single [`LaneBatch::step_lanes`] kernel call, so parallelism
/// comes from the pool *across* groups and from op-interleaved lane
/// batching *within* a group (a single-threaded host still overlaps the
/// cores' independent dependency chains). L1 hits resolve locally, and
/// every would-be L2 request is recorded into the core's [`DeferredL2`]
/// log at the lane's *predicted* per-access latency — the array-hit
/// latency initially, then the previous quantum's observed mean, so
/// dependent-load serialisation and ROB latency overlap play out in the
/// recording timeline itself. **Phase 2** merge-replays all logs against
/// the real [`SharedL2`] on a single thread in `(timestamp, core-id)`
/// order; the signed difference between what the requests actually cost —
/// bus queueing delay, memory latency on a shared-array miss — and what
/// phase 1 charged is banked as a correction credit, repaid as stall
/// cycles at the start of that core's next quantum (or offset against
/// future debt when negative). Per-core DVFS is supported by clocking each
/// lane at its mode's frequency — the quantum is measured in wall time,
/// so cores stay aligned across clock domains.
///
/// Results are bit-identical for every `GPM_THREADS` value (including the
/// pool-free serial path) and for every grouping: lanes share no mutable
/// state, the lane kernel steps each lane through the exact scalar
/// scoreboard logic, and phase 2's replay order is fully determined by the
/// logs. The golden hashes in `tests/cmp_equivalence.rs` pin this.
///
/// This is the validation counterpart of
/// [`TraceCmpSim`](crate::TraceCmpSim), mirroring the paper's full-CMP
/// Turandot implementation "with time-driven L2 and thread synchronisation".
#[derive(Debug)]
pub struct FullCmpSim {
    groups: Vec<LaneGroup>,
    shared: SharedL2,
    power: PowerModel,
    quantum: Micros,
}

impl FullCmpSim {
    /// Builds a full-CMP simulation of `combo` with fixed per-core `modes`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::CoreCountMismatch`] when `modes` does not cover
    /// the combo and propagates configuration validation failures.
    pub fn new(
        combo: &WorkloadCombo,
        modes: &ModeCombination,
        core_config: &CoreConfig,
        power: PowerModel,
        dvfs: DvfsParams,
    ) -> Result<Self> {
        if modes.len() != combo.cores() {
            return Err(GpmError::CoreCountMismatch {
                expected: combo.cores(),
                actual: modes.len(),
            });
        }
        core_config.validate()?;
        let shared_config = SharedL2Config {
            cache: core_config.l2,
            l2_latency_ns: core_config.memory.l2_latency_ns,
            memory_latency_ns: core_config.memory.memory_latency_ns,
            ..SharedL2Config::default()
        };
        let cores = combo.cores();
        let mut streams = Vec::with_capacity(cores);
        let mut freqs = Vec::with_capacity(cores);
        let mut accts = Vec::with_capacity(cores);
        for (i, &bench) in combo.benchmarks().iter().enumerate() {
            let mode = modes.mode(gpm_types::CoreId::new(i));
            let freq = dvfs.frequency(mode);
            // Distinct address bases and seed salts: four mcf instances
            // must not literally share data.
            streams.push(
                bench
                    .profile()
                    .stream_with(i as u64 * CORE_ADDR_STRIDE, i as u64)?,
            );
            freqs.push(freq);
            accts.push(LaneAccounting {
                benchmark: Arc::from(bench.name()),
                mode,
                freq,
                cycles_per_quantum: 0,
                pending_ns: 0.0,
                charge_min_ns: shared_config.l2_latency_ns,
                // Hit latency + memory latency + the M/D/1 wait at the
                // utilisation cap: the worst latency a replay can report.
                charge_max_ns: shared_config.l2_latency_ns
                    + shared_config.memory_latency_ns
                    + shared_config.service_ns * 0.98 / (2.0 * (1.0 - 0.98)),
                actual_ns: 0.0,
                cursor: 0,
                total: IntervalStats::default(),
                energy_j: 0.0,
            });
        }

        // One group per worker the pool can supply, contiguous and
        // near-equal: with a full pool each group is a single lane (pure
        // thread parallelism, as before); with fewer workers than cores the
        // kernel's op interleaving recovers the lost overlap. Grouping
        // affects scheduling only, never the simulated bytes.
        let group_count = gpm_par::max_threads().min(cores).max(1);
        let base = cores / group_count;
        let extra = cores % group_count;
        let mut groups = Vec::with_capacity(group_count);
        let mut next = 0usize;
        for g in 0..group_count {
            let len = base + usize::from(g < extra);
            let mut batch = LaneBatch::new(core_config, &freqs[next..next + len])?;
            // Each core replays its own generator — no shared tape to stay
            // close on — so round-robin interleaving buys nothing and only
            // cycles N lanes' simulated state through the host cache. Run
            // each lane straight through its quantum instead (chunk size
            // never affects simulated results).
            batch.set_chunk_ops(usize::MAX);
            let acct: Vec<LaneAccounting> = accts.drain(..len).collect();
            let group_streams: Vec<WorkloadStream> = streams.drain(..len).collect();
            groups.push(LaneGroup {
                batch,
                streams: group_streams,
                deferred: (0..len)
                    .map(|_| DeferredL2::new(shared_config.l2_latency_ns))
                    .collect(),
                acct,
                targets: vec![0; len],
                seg: vec![IntervalStats::default(); len],
            });
            next += len;
        }

        Ok(Self {
            groups,
            shared: SharedL2::new(shared_config)?,
            power,
            quantum: Micros::new(5.0),
        })
    }

    /// Overrides the synchronisation quantum (default 5 µs). Smaller values
    /// interleave the cores' L2 traffic more finely at simulation-speed
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] unless the quantum is positive
    /// and finite.
    pub fn set_quantum(&mut self, quantum: Micros) -> Result<()> {
        if !quantum.value().is_finite() || quantum.value() <= 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "quantum",
                reason: format!("must be positive and finite, got {}", quantum.value()),
            });
        }
        self.quantum = quantum;
        Ok(())
    }

    /// Runs all cores for `duration` of wall time and reports per-core
    /// averages.
    ///
    /// Phase 1 of each quantum fans out over the `gpm_par` pool
    /// (`GPM_THREADS` workers, persistent across quanta); phase 2 replays
    /// the merged request logs serially. The outcome is bit-identical for
    /// any thread count.
    pub fn run(&mut self, duration: Micros) -> FullCmpOutcome {
        let quanta = (duration.value() / self.quantum.value()).ceil() as usize;
        let window_ns = self.quantum.value() * 1.0e3;
        for acct in self.groups.iter_mut().flat_map(|g| g.acct.iter_mut()) {
            acct.cycles_per_quantum = acct.freq.cycles_in(self.quantum).value();
            acct.total = IntervalStats::default();
            acct.energy_j = 0.0;
        }

        if quanta > 0 {
            let power = &self.power;
            let shared = &mut self.shared;
            let mut round = 0usize;
            gpm_par::run_rounds(
                &mut self.groups,
                |_, group| group.step_quantum(power),
                |view| {
                    view.with_all(|groups| {
                        // Contiguous groups flattened in order = core order,
                        // which the replay tie-break depends on.
                        let mut lanes: Vec<(&mut DeferredL2, &mut LaneAccounting)> = groups
                            .iter_mut()
                            .flat_map(|g| g.deferred.iter_mut().zip(g.acct.iter_mut()))
                            .collect();
                        replay_quantum(&mut lanes, shared);
                    });
                    shared.end_window(window_ns);
                    round += 1;
                    round < quanta
                },
            );
        }

        FullCmpOutcome {
            per_core: self
                .groups
                .iter()
                .flat_map(|g| g.acct.iter().map(LaneAccounting::outcome))
                .collect(),
            duration,
            l2_utilization: self.shared.average_utilization(),
        }
    }

    /// The shared L2 (for diagnostics).
    #[must_use]
    pub fn shared_l2(&self) -> &SharedL2 {
        &self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn run_combo(combo: &WorkloadCombo, ms: f64) -> FullCmpOutcome {
        let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        sim.run(Micros::from_millis(ms))
    }

    #[test]
    fn runs_and_reports_per_core() {
        let out = run_combo(&combos::gcc_mesa(), 0.5);
        assert_eq!(out.per_core.len(), 2);
        assert_eq!(&*out.per_core[0].benchmark, "gcc");
        assert!(out.per_core.iter().all(|c| c.instructions > 10_000));
        assert!(out.chip_power().value() > 10.0);
        assert!(out.chip_bips().value() > 0.5);
    }

    #[test]
    fn memory_bound_combo_contends_in_shared_l2() {
        // Four memory-bound benchmarks: their combined warm sets overflow
        // the shared L2 and the bus queues — per-core throughput drops
        // relative to a private-L2 single-core run of the same stream.
        let out = run_combo(&combos::mcf_mcf_art_art(), 1.0);
        assert!(
            out.l2_utilization > 0.02,
            "bus contention expected, utilisation {}",
            out.l2_utilization
        );

        // Single-core reference for mcf (core 0).
        use gpm_microarch::CoreModel;
        let mut solo = CoreModel::new(
            &CoreConfig::power4(),
            DvfsParams::paper().frequency(PowerMode::Turbo),
        )
        .unwrap();
        let mut stream = gpm_workloads::SpecBenchmark::Mcf
            .profile()
            .stream_with(0, 0)
            .unwrap();
        let stats = solo.run_cycles(&mut stream, 1_000_000);
        let solo_bips = stats.bips_at(DvfsParams::paper().frequency(PowerMode::Turbo));

        let cmp_bips = out.per_core[0].bips;
        assert!(
            cmp_bips.value() < solo_bips.value(),
            "shared L2 must slow mcf: {} vs solo {}",
            cmp_bips.value(),
            solo_bips.value()
        );
    }

    #[test]
    fn cpu_bound_combo_contends_less_than_memory_bound() {
        let cpu = run_combo(&combos::sixtrack_gap_perlbmk_wupwise(), 0.5);
        let mem = run_combo(&combos::mcf_mcf_art_art(), 0.5);
        assert!(
            cpu.l2_utilization < 0.5,
            "CPU-bound combo should not saturate the bus: {}",
            cpu.l2_utilization
        );
        assert!(
            mem.l2_utilization > cpu.l2_utilization,
            "memory-bound traffic must dominate: {} vs {}",
            mem.l2_utilization,
            cpu.l2_utilization
        );
    }

    #[test]
    fn per_core_dvfs_modes_supported() {
        let combo = combos::gcc_mesa();
        let mixed = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff2]);
        let mut sim = FullCmpSim::new(
            &combo,
            &mixed,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        let out = sim.run(Micros::from_millis(0.5));
        assert_eq!(out.per_core[1].mode, PowerMode::Eff2);
        // The Eff2 core burns markedly less power per unit activity.
        assert!(out.per_core[1].power < out.per_core[0].power);
    }

    #[test]
    fn mode_count_mismatch_rejected() {
        let err = FullCmpSim::new(
            &combos::gcc_mesa(),
            &ModeCombination::uniform(3, PowerMode::Turbo),
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        );
        assert!(matches!(err, Err(GpmError::CoreCountMismatch { .. })));
    }

    #[test]
    fn invalid_quantum_rejected() {
        let combo = combos::gcc_mesa();
        let modes = ModeCombination::uniform(2, PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    sim.set_quantum(Micros::new(bad)),
                    Err(GpmError::InvalidConfig {
                        parameter: "quantum",
                        ..
                    })
                ),
                "quantum {bad} must be rejected"
            );
        }
        sim.set_quantum(Micros::new(2.5)).expect("valid quantum");
    }

    #[test]
    fn repeated_runs_reuse_accumulators() {
        // Back-to-back runs on one simulator must report only their own
        // interval (accumulators reset), while microarchitectural state
        // (warm caches) persists — the second run is at least as fast.
        let combo = combos::gcc_mesa();
        let modes = ModeCombination::uniform(2, PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .unwrap();
        let first = sim.run(Micros::from_millis(0.25));
        let second = sim.run(Micros::from_millis(0.25));
        for (a, b) in first.per_core.iter().zip(&second.per_core) {
            assert!(
                b.instructions < a.instructions * 2,
                "second run must not double-count: {} vs {}",
                b.instructions,
                a.instructions
            );
            assert!(b.instructions > 10_000);
        }
    }
}
