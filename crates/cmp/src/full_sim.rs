//! The full-CMP validation simulator: real core models sharing an L2.

use std::sync::Arc;

use gpm_microarch::{CoreConfig, DeferredL2, IntervalStats, LaneBatch};
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Bips, GpmError, Hertz, Micros, ModeCombination, PowerMode, Result, Watts};
use gpm_workloads::{WorkloadCombo, WorkloadStream};

use crate::{ClusterTopology, Interconnect, InterconnectConfig, SharedL2, SharedL2Config};

/// Address-space separation between cores' data regions, so co-scheduled
/// benchmarks do not alias in the shared L2.
const CORE_ADDR_STRIDE: u64 = 1 << 36;

/// Per-core results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerCoreOutcome {
    /// Benchmark name (shared, not re-allocated per outcome).
    pub benchmark: Arc<str>,
    /// The mode the core ran in.
    pub mode: PowerMode,
    /// Instructions retired.
    pub instructions: u64,
    /// Average power over the run.
    pub power: Watts,
    /// Average throughput over the run.
    pub bips: Bips,
    /// L2 misses observed by this core.
    pub l2_misses: u64,
}

/// Aggregate results of a full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct FullCmpOutcome {
    /// One entry per core.
    pub per_core: Vec<PerCoreOutcome>,
    /// Wall-clock duration simulated.
    pub duration: Micros,
    /// Mean shared-bus utilisation over the run (averaged across clusters
    /// in a clustered configuration).
    pub l2_utilization: f64,
    /// Mean inter-cluster interconnect utilisation over the run. Always
    /// `0.0` for the flat (single shared L2) configuration, which has no
    /// interconnect.
    pub interconnect_utilization: f64,
}

impl FullCmpOutcome {
    /// Total chip power (sum of per-core averages).
    #[must_use]
    pub fn chip_power(&self) -> Watts {
        self.per_core.iter().map(|c| c.power).sum()
    }

    /// Total chip throughput.
    #[must_use]
    pub fn chip_bips(&self) -> Bips {
        Bips::new(self.per_core.iter().map(|c| c.bips.value()).sum())
    }
}

/// Per-core bookkeeping that lives *outside* the lane batch: identity,
/// clocking, the correction-credit carry of the two-phase protocol, and the
/// run accumulators. One `LaneAccounting` per core, in core order, split
/// across the [`LaneGroup`]s.
#[derive(Debug)]
struct LaneAccounting {
    benchmark: Arc<str>,
    mode: PowerMode,
    freq: Hertz,
    /// Core cycles per synchronisation quantum at this lane's frequency;
    /// recomputed when a run starts (the quantum is configurable).
    cycles_per_quantum: u64,
    /// Signed correction credit in nanoseconds: positive when the replay
    /// discovered more latency than phase 1 charged (repaid as stall
    /// cycles), negative when phase 1 overcharged (offsets future debt).
    pending_ns: f64,
    /// Bounds for the per-access charge predictor (array-hit latency up to
    /// hit + memory + worst-case queueing delay).
    charge_min_ns: f64,
    charge_max_ns: f64,
    /// Replay scratch: total actual latency of this lane's requests this
    /// quantum.
    actual_ns: f64,
    /// Replay scratch: merge cursor into the sorted request log.
    cursor: usize,
    /// Run accumulators, reused across `run` calls.
    total: IntervalStats,
    energy_j: f64,
}

impl LaneAccounting {
    /// Settles this quantum's replay against what phase 1 charged: the
    /// signed difference joins the correction credit, and the charge
    /// predictor moves to the quantum's observed mean latency so the next
    /// recording timeline already runs at a realistic speed (preserving
    /// the core model's latency overlap instead of converting all miss
    /// latency into un-overlappable stalls).
    fn bank_correction(&mut self, deferred: &mut DeferredL2) {
        let requests = self.cursor;
        let charged_ns = requests as f64 * deferred.charge_ns();
        self.pending_ns += self.actual_ns - charged_ns;
        // A run of overcharged quanta must not accumulate unbounded credit:
        // a core can at most have been one quantum ahead of reality.
        let quantum_ns = self.cycles_per_quantum as f64 * 1.0e9 / self.freq.value();
        self.pending_ns = self.pending_ns.max(-quantum_ns);
        if requests > 0 {
            let mean = self.actual_ns / requests as f64;
            deferred.set_charge_ns(mean.clamp(self.charge_min_ns, self.charge_max_ns));
        }
    }

    fn outcome(&self) -> PerCoreOutcome {
        let secs = self.total.cycles as f64 / self.freq.value();
        PerCoreOutcome {
            benchmark: Arc::clone(&self.benchmark),
            mode: self.mode,
            instructions: self.total.instructions,
            power: Watts::new(self.energy_j / secs),
            bips: Bips::new(self.total.instructions as f64 / secs / 1.0e9),
            l2_misses: self.total.l2_misses,
        }
    }
}

/// A contiguous slice of the combo's cores advanced through one
/// [`LaneBatch`] kernel call per quantum. Phase 1 hands each group to
/// exactly one pool worker; within the group the kernel interleaves the
/// lanes op-by-op, so a single worker still overlaps the cores'
/// independent dependency chains. In the flat configuration phase 2 walks
/// all groups' lanes on a single thread; in the clustered configuration
/// each cluster owns exactly one group and replays it against its private
/// L2 inside the parallel phase.
#[derive(Debug)]
struct LaneGroup {
    batch: LaneBatch,
    streams: Vec<WorkloadStream>,
    deferred: Vec<DeferredL2>,
    acct: Vec<LaneAccounting>,
    /// Kernel scratch, one slot per lane (cycle targets and captured
    /// per-quantum stats), retained across quanta to avoid reallocation.
    targets: Vec<u64>,
    seg: Vec<IntervalStats>,
}

impl LaneGroup {
    /// Phase 1: step every lane of the group one quantum. Per lane: repay
    /// any positive correction credit as stall cycles, then run the
    /// remainder of the quantum against the recording L2 — all lanes
    /// through one `step_lanes` call — and finally sort the request logs
    /// so phase 2 can k-way merge.
    fn step_quantum(&mut self, power: &PowerModel) {
        let Self {
            batch,
            streams,
            deferred,
            acct,
            targets,
            seg,
        } = self;
        for (lane, acct) in acct.iter_mut().enumerate() {
            let quantum_cycles = acct.cycles_per_quantum;
            let stall = if acct.pending_ns > 0.0 {
                acct.freq.cycles_for_ns(acct.pending_ns).min(quantum_cycles)
            } else {
                0
            };
            if stall > 0 {
                acct.pending_ns -= stall as f64 * 1.0e9 / acct.freq.value();
                batch.apply_stall_cycles(lane, stall);
            }
            deferred[lane].reset();
            acct.actual_ns = 0.0;
            acct.cursor = 0;
            targets[lane] = quantum_cycles - stall;
            seg[lane] = IntervalStats::default();
        }

        batch.step_lanes(streams, deferred, targets, |lane, stats| {
            seg[lane] = *stats;
            None
        });

        for (lane, acct) in acct.iter_mut().enumerate() {
            let mut stats = seg[lane];
            stats.cycles += acct.cycles_per_quantum - targets[lane];
            let power = power.power(&stats.activity(), acct.mode);
            let secs = stats.cycles as f64 / acct.freq.value();
            acct.energy_j += power.value() * secs;
            acct.total.merge(&stats);
            deferred[lane].sort_log();
        }
    }
}

/// Phase 2: merge-replay all lanes' sorted request logs against the real
/// shared L2 in global `(timestamp, core-id)` order. Returns the number of
/// L2 misses the replay produced.
///
/// The deterministic tie-break — strictly-smaller timestamp wins, equal
/// timestamps go to the lower core id — makes the replay order (and hence
/// the shared tag-array state, queue accounting and per-core corrections)
/// independent of how phase 1 was scheduled *and* of how the cores were
/// grouped into lane batches. Each lane accumulates the actual latency of
/// its requests (queueing delay, and memory latency when the shared array
/// misses); [`LaneAccounting::bank_correction`] settles that against what
/// phase 1 charged. Misses are credited back to the owning core's counters
/// and additionally charged `miss_extra_ns` — the inter-cluster
/// interconnect penalty in a clustered configuration, `0.0` (exact, by
/// IEEE 754 identity) for the flat path. `lanes` must be in core order.
fn replay_quantum(
    lanes: &mut [(&mut DeferredL2, &mut LaneAccounting)],
    shared: &mut SharedL2,
    miss_extra_ns: f64,
) -> u64 {
    let mut misses = 0u64;
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, (deferred, acct)) in lanes.iter().enumerate() {
            if let Some(req) = deferred.log().get(acct.cursor) {
                let earlier = best.is_none_or(|(_, t)| req.now_ns < t);
                if earlier {
                    best = Some((i, req.now_ns));
                }
            }
        }
        let Some((i, _)) = best else { break };
        let (deferred, acct) = &mut lanes[i];
        let req = deferred.log()[acct.cursor];
        acct.cursor += 1;
        let (mut actual_ns, hit) = shared.replay_access(req.addr);
        if !hit {
            actual_ns += miss_extra_ns;
            misses += 1;
            acct.total.l2_misses += 1;
        }
        acct.actual_ns += actual_ns;
    }
    for (deferred, acct) in lanes {
        acct.bank_correction(deferred);
    }
    misses
}

/// One cluster of the sharded drive: a [`LaneGroup`] over the cluster's
/// cores plus the cluster's private L2. Both phases of the two-phase
/// protocol run inside the parallel round callback — the interconnect is
/// read-only during a quantum (its penalty is frozen in `icn_penalty_ns`
/// at each window boundary), so nothing a cluster touches is shared.
#[derive(Debug)]
struct ClusterLanes {
    group: LaneGroup,
    l2: SharedL2,
    /// Per-miss interconnect penalty for the current window, broadcast by
    /// the serial phase after it closes the interconnect window.
    icn_penalty_ns: f64,
    /// Misses this cluster's replay produced in the last quantum — the
    /// traffic the serial phase feeds into the interconnect accounting.
    quantum_misses: u64,
}

impl ClusterLanes {
    /// Steps the cluster one quantum: phase-1 lane stepping, then the
    /// per-cluster phase-2 replay against the private L2, then the L2
    /// window close. All of it runs on this cluster's pool worker.
    fn run_quantum(&mut self, power: &PowerModel, window_ns: f64) {
        self.group.step_quantum(power);
        let mut lanes: Vec<(&mut DeferredL2, &mut LaneAccounting)> = self
            .group
            .deferred
            .iter_mut()
            .zip(self.group.acct.iter_mut())
            .collect();
        self.quantum_misses = replay_quantum(&mut lanes, &mut self.l2, self.icn_penalty_ns);
        self.l2.end_window(window_ns);
    }
}

/// Per-core construction state shared by the flat and clustered builders.
struct CoreSetup {
    streams: Vec<WorkloadStream>,
    freqs: Vec<Hertz>,
    accts: Vec<LaneAccounting>,
    shared_config: SharedL2Config,
}

/// Builds the streams, clocks and accounting rows for every core.
/// `miss_extra_max_ns` widens the charge predictor's upper bound by the
/// worst interconnect penalty a miss can pay; the flat path passes `0.0`,
/// keeping its bound bit-identical to the pre-cluster arithmetic.
fn build_cores(
    combo: &WorkloadCombo,
    modes: &ModeCombination,
    core_config: &CoreConfig,
    dvfs: &DvfsParams,
    miss_extra_max_ns: f64,
) -> Result<CoreSetup> {
    if modes.len() != combo.cores() {
        return Err(GpmError::CoreCountMismatch {
            expected: combo.cores(),
            actual: modes.len(),
        });
    }
    core_config.validate()?;
    let shared_config = SharedL2Config {
        cache: core_config.l2,
        l2_latency_ns: core_config.memory.l2_latency_ns,
        memory_latency_ns: core_config.memory.memory_latency_ns,
        ..SharedL2Config::default()
    };
    let cores = combo.cores();
    let mut streams = Vec::with_capacity(cores);
    let mut freqs = Vec::with_capacity(cores);
    let mut accts = Vec::with_capacity(cores);
    for (i, &bench) in combo.benchmarks().iter().enumerate() {
        let mode = modes.mode(gpm_types::CoreId::new(i));
        let freq = dvfs.frequency(mode);
        // Distinct address bases and seed salts: four mcf instances
        // must not literally share data.
        streams.push(
            bench
                .profile()
                .stream_with(i as u64 * CORE_ADDR_STRIDE, i as u64)?,
        );
        freqs.push(freq);
        accts.push(LaneAccounting {
            benchmark: Arc::from(bench.name()),
            mode,
            freq,
            cycles_per_quantum: 0,
            pending_ns: 0.0,
            charge_min_ns: shared_config.l2_latency_ns,
            // Hit latency + memory latency + the M/D/1 wait at the
            // utilisation cap (+ the worst interconnect crossing, when
            // clustered): the worst latency a replay can report.
            charge_max_ns: shared_config.l2_latency_ns
                + shared_config.memory_latency_ns
                + shared_config.service_ns * 0.98 / (2.0 * (1.0 - 0.98))
                + miss_extra_max_ns,
            actual_ns: 0.0,
            cursor: 0,
            total: IntervalStats::default(),
            energy_j: 0.0,
        });
    }
    Ok(CoreSetup {
        streams,
        freqs,
        accts,
        shared_config,
    })
}

/// Builds one lane group over a contiguous run of cores.
fn build_group(
    core_config: &CoreConfig,
    shared_config: &SharedL2Config,
    streams: Vec<WorkloadStream>,
    accts: Vec<LaneAccounting>,
    freqs: &[Hertz],
) -> Result<LaneGroup> {
    let len = freqs.len();
    let mut batch = LaneBatch::new(core_config, freqs)?;
    // Each core replays its own generator — no shared tape to stay
    // close on — so round-robin interleaving buys nothing and only
    // cycles N lanes' simulated state through the host cache. Run
    // each lane straight through its quantum instead (chunk size
    // never affects simulated results).
    batch.set_chunk_ops(usize::MAX);
    Ok(LaneGroup {
        batch,
        streams,
        deferred: (0..len)
            .map(|_| DeferredL2::new(shared_config.l2_latency_ns))
            .collect(),
        acct: accts,
        targets: vec![0; len],
        seg: vec![IntervalStats::default(); len],
    })
}

/// The two drive shapes of the simulator: the flat single-shared-L2
/// protocol (serial global replay) and the cluster-sharded protocol
/// (parallel per-cluster replays, serialised interconnect merge).
#[derive(Debug)]
enum Drive {
    Flat {
        groups: Vec<LaneGroup>,
        shared: SharedL2,
    },
    Sharded {
        clusters: Vec<ClusterLanes>,
        interconnect: Interconnect,
    },
}

/// A time-quantum-synchronised multi-core simulation over the real
/// `gpm-microarch` core models and one or more [`SharedL2`]s.
///
/// Cores advance in short wall-clock quanta (5 µs by default) under a
/// two-phase protocol. **Phase 1** steps every core for one quantum: the
/// cores are partitioned into contiguous [`LaneGroup`]s — one per worker
/// the `gpm_par` pool can supply — and each group advances all its lanes
/// through a single [`LaneBatch::step_lanes`] kernel call, so parallelism
/// comes from the pool *across* groups and from op-interleaved lane
/// batching *within* a group (a single-threaded host still overlaps the
/// cores' independent dependency chains). L1 hits resolve locally, and
/// every would-be L2 request is recorded into the core's [`DeferredL2`]
/// log at the lane's *predicted* per-access latency — the array-hit
/// latency initially, then the previous quantum's observed mean, so
/// dependent-load serialisation and ROB latency overlap play out in the
/// recording timeline itself. **Phase 2** merge-replays the logs against
/// the real [`SharedL2`] in `(timestamp, core-id)` order; the signed
/// difference between what the requests actually cost — bus queueing
/// delay, memory latency on a shared-array miss — and what phase 1 charged
/// is banked as a correction credit, repaid as stall cycles at the start
/// of that core's next quantum (or offset against future debt when
/// negative). Per-core DVFS is supported by clocking each lane at its
/// mode's frequency — the quantum is measured in wall time, so cores stay
/// aligned across clock domains.
///
/// Two drive shapes exist:
///
/// * **Flat** ([`FullCmpSim::new`]) — one chip-wide shared L2; phase 2 is
///   a single serial global merge. This is the paper's configuration.
/// * **Cluster-sharded** ([`FullCmpSim::with_topology`]) — K clusters of
///   cores, each with a private L2 ([`ClusterTopology`]); misses
///   additionally cross the global [`Interconnect`]. Each cluster maps
///   onto one pool worker and runs *both* phases inside the parallel
///   round; the interconnect's per-miss penalty is frozen per window, so
///   the only serialised work is summing the clusters' miss counts and
///   closing the interconnect window. With one cluster and a zero-cost
///   interconnect this is bit-identical to the flat drive.
///
/// Results are bit-identical for every `GPM_THREADS` value (including the
/// pool-free serial path) and for every grouping: lanes share no mutable
/// state, the lane kernel steps each lane through the exact scalar
/// scoreboard logic, phase 2's replay order is fully determined by the
/// logs, and the interconnect merge sums unsigned counters. The golden
/// hashes in `tests/cmp_equivalence.rs` and `tests/hier_equivalence.rs`
/// pin this.
///
/// This is the validation counterpart of
/// [`TraceCmpSim`](crate::TraceCmpSim), mirroring the paper's full-CMP
/// Turandot implementation "with time-driven L2 and thread synchronisation".
#[derive(Debug)]
pub struct FullCmpSim {
    drive: Drive,
    power: PowerModel,
    quantum: Micros,
}

impl FullCmpSim {
    /// Builds a flat (single shared L2) full-CMP simulation of `combo`
    /// with fixed per-core `modes`.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::CoreCountMismatch`] when `modes` does not cover
    /// the combo and propagates configuration validation failures.
    pub fn new(
        combo: &WorkloadCombo,
        modes: &ModeCombination,
        core_config: &CoreConfig,
        power: PowerModel,
        dvfs: DvfsParams,
    ) -> Result<Self> {
        let CoreSetup {
            mut streams,
            freqs,
            mut accts,
            shared_config,
        } = build_cores(combo, modes, core_config, &dvfs, 0.0)?;
        let cores = freqs.len();

        // One group per worker the pool can supply, contiguous and
        // near-equal: with a full pool each group is a single lane (pure
        // thread parallelism, as before); with fewer workers than cores the
        // kernel's op interleaving recovers the lost overlap. Grouping
        // affects scheduling only, never the simulated bytes.
        let group_count = gpm_par::max_threads().min(cores).max(1);
        let base = cores / group_count;
        let extra = cores % group_count;
        let mut groups = Vec::with_capacity(group_count);
        let mut next = 0usize;
        for g in 0..group_count {
            let len = base + usize::from(g < extra);
            groups.push(build_group(
                core_config,
                &shared_config,
                streams.drain(..len).collect(),
                accts.drain(..len).collect(),
                &freqs[next..next + len],
            )?);
            next += len;
        }

        Ok(Self {
            drive: Drive::Flat {
                groups,
                shared: SharedL2::new(shared_config)?,
            },
            power,
            quantum: Micros::new(5.0),
        })
    }

    /// Builds a cluster-sharded full-CMP simulation: `topology` partitions
    /// the combo's cores into clusters, each with a private L2 of the
    /// configured geometry, joined by an [`Interconnect`] with
    /// `interconnect` timing. One [`LaneGroup`] per cluster maps onto the
    /// `gpm_par` pool.
    ///
    /// A single-cluster topology with [`InterconnectConfig::zero`] is
    /// bit-identical to [`FullCmpSim::new`] — useful for pinning the
    /// sharded drive against the flat golden hashes.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::CoreCountMismatch`] when the topology or the
    /// modes do not cover the combo, and propagates configuration
    /// validation failures.
    pub fn with_topology(
        combo: &WorkloadCombo,
        modes: &ModeCombination,
        core_config: &CoreConfig,
        power: PowerModel,
        dvfs: DvfsParams,
        topology: ClusterTopology,
        interconnect: InterconnectConfig,
    ) -> Result<Self> {
        if topology.cores() != combo.cores() {
            return Err(GpmError::CoreCountMismatch {
                expected: combo.cores(),
                actual: topology.cores(),
            });
        }
        // Worst-case crossing: hop latency + the M/D/1 wait at the
        // utilisation cap. Zero for a zero-cost interconnect, keeping the
        // charge bound bit-identical to the flat path's.
        let miss_extra_max_ns =
            interconnect.hop_latency_ns + interconnect.service_ns * 0.98 / (2.0 * (1.0 - 0.98));
        let CoreSetup {
            mut streams,
            freqs,
            mut accts,
            shared_config,
        } = build_cores(combo, modes, core_config, &dvfs, miss_extra_max_ns)?;

        let interconnect = Interconnect::new(interconnect)?;
        let per = topology.cores_per_cluster();
        let mut clusters = Vec::with_capacity(topology.clusters());
        for k in 0..topology.clusters() {
            let range = topology.core_range(k);
            clusters.push(ClusterLanes {
                group: build_group(
                    core_config,
                    &shared_config,
                    streams.drain(..per).collect(),
                    accts.drain(..per).collect(),
                    &freqs[range],
                )?,
                l2: SharedL2::new(shared_config)?,
                icn_penalty_ns: interconnect.penalty_ns(),
                quantum_misses: 0,
            });
        }

        Ok(Self {
            drive: Drive::Sharded {
                clusters,
                interconnect,
            },
            power,
            quantum: Micros::new(5.0),
        })
    }

    /// Overrides the synchronisation quantum (default 5 µs). Smaller values
    /// interleave the cores' L2 traffic more finely at simulation-speed
    /// cost.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::InvalidConfig`] unless the quantum is positive
    /// and finite.
    pub fn set_quantum(&mut self, quantum: Micros) -> Result<()> {
        if !quantum.value().is_finite() || quantum.value() <= 0.0 {
            return Err(GpmError::InvalidConfig {
                parameter: "quantum",
                reason: format!("must be positive and finite, got {}", quantum.value()),
            });
        }
        self.quantum = quantum;
        Ok(())
    }

    /// Runs all cores for `duration` of wall time and reports per-core
    /// averages.
    ///
    /// Phase 1 of each quantum fans out over the `gpm_par` pool
    /// (`GPM_THREADS` workers, persistent across quanta); in the flat
    /// drive phase 2 replays the merged request logs serially, while the
    /// cluster-sharded drive replays per cluster inside the parallel phase
    /// and serialises only the interconnect merge. The outcome is
    /// bit-identical for any thread count.
    pub fn run(&mut self, duration: Micros) -> FullCmpOutcome {
        let quanta = (duration.value() / self.quantum.value()).ceil() as usize;
        let window_ns = self.quantum.value() * 1.0e3;
        let power = &self.power;
        match &mut self.drive {
            Drive::Flat { groups, shared } => {
                for acct in groups.iter_mut().flat_map(|g| g.acct.iter_mut()) {
                    acct.cycles_per_quantum = acct.freq.cycles_in(self.quantum).value();
                    acct.total = IntervalStats::default();
                    acct.energy_j = 0.0;
                }

                if quanta > 0 {
                    let mut round = 0usize;
                    gpm_par::run_rounds(
                        groups,
                        |_, group| group.step_quantum(power),
                        |view| {
                            view.with_all(|groups| {
                                // Contiguous groups flattened in order = core order,
                                // which the replay tie-break depends on.
                                let mut lanes: Vec<(&mut DeferredL2, &mut LaneAccounting)> = groups
                                    .iter_mut()
                                    .flat_map(|g| g.deferred.iter_mut().zip(g.acct.iter_mut()))
                                    .collect();
                                replay_quantum(&mut lanes, shared, 0.0);
                            });
                            shared.end_window(window_ns);
                            round += 1;
                            round < quanta
                        },
                    );
                }

                FullCmpOutcome {
                    per_core: groups
                        .iter()
                        .flat_map(|g| g.acct.iter().map(LaneAccounting::outcome))
                        .collect(),
                    duration,
                    l2_utilization: shared.average_utilization(),
                    interconnect_utilization: 0.0,
                }
            }
            Drive::Sharded {
                clusters,
                interconnect,
            } => {
                for cluster in clusters.iter_mut() {
                    for acct in cluster.group.acct.iter_mut() {
                        acct.cycles_per_quantum = acct.freq.cycles_in(self.quantum).value();
                        acct.total = IntervalStats::default();
                        acct.energy_j = 0.0;
                    }
                    cluster.icn_penalty_ns = interconnect.penalty_ns();
                    cluster.quantum_misses = 0;
                }

                if quanta > 0 {
                    let mut round = 0usize;
                    gpm_par::run_rounds(
                        clusters,
                        |_, cluster| cluster.run_quantum(power, window_ns),
                        |view| {
                            view.with_all(|clusters| {
                                // The only cross-cluster state: summed miss
                                // traffic (order-independent) and the next
                                // window's frozen penalty.
                                let mut misses = 0u64;
                                for c in clusters.iter() {
                                    misses += c.quantum_misses;
                                }
                                interconnect.note_traffic(misses);
                                interconnect.end_window(window_ns);
                                let penalty = interconnect.penalty_ns();
                                for c in clusters.iter_mut() {
                                    c.icn_penalty_ns = penalty;
                                }
                            });
                            round += 1;
                            round < quanta
                        },
                    );
                }

                let cluster_count = clusters.len();
                FullCmpOutcome {
                    per_core: clusters
                        .iter()
                        .flat_map(|c| c.group.acct.iter().map(LaneAccounting::outcome))
                        .collect(),
                    duration,
                    l2_utilization: clusters
                        .iter()
                        .map(|c| c.l2.average_utilization())
                        .sum::<f64>()
                        / cluster_count as f64,
                    interconnect_utilization: interconnect.average_utilization(),
                }
            }
        }
    }

    /// The shared L2 of the flat drive (for diagnostics). `None` for a
    /// cluster-sharded simulation, which has one private L2 per cluster.
    #[must_use]
    pub fn shared_l2(&self) -> Option<&SharedL2> {
        match &self.drive {
            Drive::Flat { shared, .. } => Some(shared),
            Drive::Sharded { .. } => None,
        }
    }

    /// The inter-cluster interconnect of the sharded drive (for
    /// diagnostics). `None` for the flat drive.
    #[must_use]
    pub fn interconnect(&self) -> Option<&Interconnect> {
        match &self.drive {
            Drive::Flat { .. } => None,
            Drive::Sharded { interconnect, .. } => Some(interconnect),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn run_combo(combo: &WorkloadCombo, ms: f64) -> FullCmpOutcome {
        let modes = ModeCombination::uniform(combo.cores(), PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("flat sim builds for a valid combo");
        sim.run(Micros::from_millis(ms))
    }

    fn sharded_sim(
        combo: &WorkloadCombo,
        cluster_cores: usize,
        icn: InterconnectConfig,
    ) -> FullCmpSim {
        FullCmpSim::with_topology(
            combo,
            &ModeCombination::uniform(combo.cores(), PowerMode::Turbo),
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
            ClusterTopology::for_cores(combo.cores(), cluster_cores)
                .expect("combo divides into clusters"),
            icn,
        )
        .expect("sharded sim builds for a valid combo")
    }

    #[test]
    fn runs_and_reports_per_core() {
        let out = run_combo(&combos::gcc_mesa(), 0.5);
        assert_eq!(out.per_core.len(), 2);
        assert_eq!(&*out.per_core[0].benchmark, "gcc");
        assert!(out.per_core.iter().all(|c| c.instructions > 10_000));
        assert!(out.chip_power().value() > 10.0);
        assert!(out.chip_bips().value() > 0.5);
        assert_eq!(out.interconnect_utilization, 0.0, "flat has no fabric");
    }

    #[test]
    fn memory_bound_combo_contends_in_shared_l2() {
        // Four memory-bound benchmarks: their combined warm sets overflow
        // the shared L2 and the bus queues — per-core throughput drops
        // relative to a private-L2 single-core run of the same stream.
        let out = run_combo(&combos::mcf_mcf_art_art(), 1.0);
        assert!(
            out.l2_utilization > 0.02,
            "bus contention expected, utilisation {}",
            out.l2_utilization
        );

        // Single-core reference for mcf (core 0).
        use gpm_microarch::CoreModel;
        let mut solo = CoreModel::new(
            &CoreConfig::power4(),
            DvfsParams::paper().frequency(PowerMode::Turbo),
        )
        .expect("POWER4 core config is valid");
        let mut stream = gpm_workloads::SpecBenchmark::Mcf
            .profile()
            .stream_with(0, 0)
            .expect("mcf stream builds");
        let stats = solo.run_cycles(&mut stream, 1_000_000);
        let solo_bips = stats.bips_at(DvfsParams::paper().frequency(PowerMode::Turbo));

        let cmp_bips = out.per_core[0].bips;
        assert!(
            cmp_bips.value() < solo_bips.value(),
            "shared L2 must slow mcf: {} vs solo {}",
            cmp_bips.value(),
            solo_bips.value()
        );
    }

    #[test]
    fn cpu_bound_combo_contends_less_than_memory_bound() {
        let cpu = run_combo(&combos::sixtrack_gap_perlbmk_wupwise(), 0.5);
        let mem = run_combo(&combos::mcf_mcf_art_art(), 0.5);
        assert!(
            cpu.l2_utilization < 0.5,
            "CPU-bound combo should not saturate the bus: {}",
            cpu.l2_utilization
        );
        assert!(
            mem.l2_utilization > cpu.l2_utilization,
            "memory-bound traffic must dominate: {} vs {}",
            mem.l2_utilization,
            cpu.l2_utilization
        );
    }

    #[test]
    fn per_core_dvfs_modes_supported() {
        let combo = combos::gcc_mesa();
        let mixed = ModeCombination::new(vec![PowerMode::Turbo, PowerMode::Eff2]);
        let mut sim = FullCmpSim::new(
            &combo,
            &mixed,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("flat sim builds for mixed modes");
        let out = sim.run(Micros::from_millis(0.5));
        assert_eq!(out.per_core[1].mode, PowerMode::Eff2);
        // The Eff2 core burns markedly less power per unit activity.
        assert!(out.per_core[1].power < out.per_core[0].power);
    }

    #[test]
    fn mode_count_mismatch_rejected() {
        let err = FullCmpSim::new(
            &combos::gcc_mesa(),
            &ModeCombination::uniform(3, PowerMode::Turbo),
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        );
        assert!(matches!(err, Err(GpmError::CoreCountMismatch { .. })));
    }

    #[test]
    fn topology_core_count_mismatch_rejected() {
        let err = FullCmpSim::with_topology(
            &combos::gcc_mesa(),
            &ModeCombination::uniform(2, PowerMode::Turbo),
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
            ClusterTopology::for_cores(8, 4).expect("8 divides by 4"),
            InterconnectConfig::zero(),
        );
        assert!(matches!(err, Err(GpmError::CoreCountMismatch { .. })));
    }

    #[test]
    fn sharded_single_cluster_zero_interconnect_matches_flat() {
        // The full golden-hash bit-identity lives in
        // tests/hier_equivalence.rs; this is the cheap in-crate check that
        // the degenerate sharded drive is *exactly* the flat drive.
        let combo = combos::gcc_mesa();
        let flat = run_combo(&combo, 0.25);
        let mut sharded = sharded_sim(&combo, combo.cores(), InterconnectConfig::zero());
        let out = sharded.run(Micros::from_millis(0.25));
        assert_eq!(out, flat, "K=1 + zero interconnect must be bit-identical");
    }

    #[test]
    fn sharded_clusters_cross_interconnect() {
        // Memory-bound 4-way split into two 2-core clusters: misses cross
        // the fabric, so the interconnect sees traffic and a non-trivial
        // hop penalty slows the cores relative to a free interconnect.
        let combo = combos::mcf_mcf_art_art();
        let mut free = sharded_sim(&combo, 2, InterconnectConfig::zero());
        let mut slow = sharded_sim(
            &combo,
            2,
            InterconnectConfig {
                hop_latency_ns: 200.0,
                service_ns: 4.0,
            },
        );
        let out_free = free.run(Micros::from_millis(1.0));
        let out_slow = slow.run(Micros::from_millis(1.0));
        assert!(
            out_slow.interconnect_utilization > 0.0,
            "miss traffic must register on the fabric"
        );
        assert!(
            out_slow.chip_bips().value() < out_free.chip_bips().value(),
            "a 200 ns hop must cost throughput: {} vs {}",
            out_slow.chip_bips().value(),
            out_free.chip_bips().value()
        );
    }

    #[test]
    fn sharded_private_l2_reduces_capacity_contention() {
        // mcf|mcf|art|art in one 4-core cluster shares a 2 MB L2; split
        // into two clusters each pair gets a private 2 MB array, so chip
        // miss counts can only drop (same streams, more total capacity).
        let combo = combos::mcf_mcf_art_art();
        let mut one = sharded_sim(&combo, 4, InterconnectConfig::zero());
        let mut two = sharded_sim(&combo, 2, InterconnectConfig::zero());
        let misses_one: u64 = one
            .run(Micros::from_millis(1.0))
            .per_core
            .iter()
            .map(|c| c.l2_misses)
            .sum();
        let misses_two: u64 = two
            .run(Micros::from_millis(1.0))
            .per_core
            .iter()
            .map(|c| c.l2_misses)
            .sum();
        assert!(
            misses_two < misses_one,
            "private per-cluster L2s must cut misses: {misses_two} vs {misses_one}"
        );
    }

    #[test]
    fn invalid_quantum_rejected() {
        let combo = combos::gcc_mesa();
        let modes = ModeCombination::uniform(2, PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("flat sim builds for a valid combo");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    sim.set_quantum(Micros::new(bad)),
                    Err(GpmError::InvalidConfig {
                        parameter: "quantum",
                        ..
                    })
                ),
                "quantum {bad} must be rejected"
            );
        }
        sim.set_quantum(Micros::new(2.5)).expect("valid quantum");
    }

    #[test]
    fn repeated_runs_reuse_accumulators() {
        // Back-to-back runs on one simulator must report only their own
        // interval (accumulators reset), while microarchitectural state
        // (warm caches) persists — the second run is at least as fast.
        let combo = combos::gcc_mesa();
        let modes = ModeCombination::uniform(2, PowerMode::Turbo);
        let mut sim = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("flat sim builds for a valid combo");
        let first = sim.run(Micros::from_millis(0.25));
        let second = sim.run(Micros::from_millis(0.25));
        for (a, b) in first.per_core.iter().zip(&second.per_core) {
            assert!(
                b.instructions < a.instructions * 2,
                "second run must not double-count: {} vs {}",
                b.instructions,
                a.instructions
            );
            assert!(b.instructions > 10_000);
        }
    }

    #[test]
    fn diagnostics_match_drive_shape() {
        let combo = combos::gcc_mesa();
        let modes = ModeCombination::uniform(2, PowerMode::Turbo);
        let flat = FullCmpSim::new(
            &combo,
            &modes,
            &CoreConfig::power4(),
            PowerModel::power4_calibrated(),
            DvfsParams::paper(),
        )
        .expect("flat sim builds");
        assert!(flat.shared_l2().is_some());
        assert!(flat.interconnect().is_none());
        let sharded = sharded_sim(&combo, 1, InterconnectConfig::default());
        assert!(sharded.shared_l2().is_none());
        assert!(sharded.interconnect().is_some());
    }
}
