//! CMP simulators: the paper's fast trace-based analysis tool and the
//! cycle-level full-CMP validation model.
//!
//! Two simulators live here (Section 3.1 of the paper):
//!
//! * [`TraceCmpSim`] — the *static trace-based CMP analysis tool*. Each core
//!   progresses its benchmark's per-mode trace (captured by `gpm-trace`) in
//!   `delta_sim_time` (50 µs) steps; mode switches happen simultaneously at
//!   all cores on `explore_time` (500 µs) boundaries, paying the longest
//!   per-core DVFS transition as a GALS synchronisation stall during which
//!   no instructions execute but CPU power is still consumed. Termination is
//!   when the first benchmark completes. This is the engine under every
//!   policy experiment.
//! * [`FullCmpSim`] — a time-quantum-synchronised multi-core run of the real
//!   `gpm-microarch` core models against a **shared L2 with bus contention**
//!   ([`SharedL2`]). The paper uses the analogous cycle-accurate full-CMP
//!   Turandot to validate the trace tool: chip power within ~5% (and
//!   consistently lower), performance lower by ~9% on average and up to
//!   ~30% for memory-bound combinations.
//!
//! The global power-management policies themselves live in `gpm-core`; they
//! drive a [`TraceCmpSim`] through [`TraceCmpSim::advance_explore`].
//!
//! # Examples
//!
//! ```no_run
//! use gpm_cmp::{SimParams, TraceCmpSim};
//! use gpm_trace::{CaptureConfig, TraceStore};
//! use gpm_types::{ModeCombination, PowerMode};
//! use gpm_workloads::combos;
//!
//! let store = TraceStore::new(CaptureConfig::default());
//! let traces = store.combo(&combos::ammp_mcf_crafty_art())?;
//! let mut sim = TraceCmpSim::new(traces, SimParams::default())?;
//! let all_turbo = ModeCombination::uniform(4, PowerMode::Turbo);
//! while !sim.finished() {
//!     let outcome = sim.advance_explore(&all_turbo)?;
//!     println!("chip power {:.1}", outcome.average_chip_power());
//! }
//! # Ok::<(), gpm_types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod full_sim;
mod l2_bus;
mod params;
mod shared_l2;
mod trace_sim;

pub use cluster::{ClusterTopology, Interconnect, InterconnectConfig};
pub use full_sim::{FullCmpOutcome, FullCmpSim, PerCoreOutcome};
pub use l2_bus::L2Bus;
pub use params::{SensorModel, SimParams, TransitionBehavior};
pub use shared_l2::{L2Lookup, SharedL2, SharedL2Config};
pub use trace_sim::{CoreObservation, ExploreOutcome, SimHistory, TraceCmpSim};
