//! Bus/queue accounting for the shared L2, separated from the tag array.
//!
//! The split keeps the two-phase replay cheap: phase 2 touches the tag
//! array once per logged request ([`L2Lookup`](crate::L2Lookup)) and this
//! accounting once per request plus once per window — no branching on
//! simulation mode anywhere in the lookup path.

/// Windowed M/D/1 queueing model of the shared L2 bus.
///
/// Accesses are noted as they (re)play; closing an observation window
/// converts the window's bus utilisation into the queueing delay charged
/// to every access of the *next* window (`w = s·ρ/(2(1−ρ))`, the M/D/1
/// mean wait). Rate-based rather than event-timestamped on purpose: the
/// cores advance with drifting local clocks, and absolute-timestamp
/// arbitration would be unstable under that interleaving.
#[derive(Debug, Clone)]
pub struct L2Bus {
    service_ns: f64,
    window_accesses: u64,
    current_queue_ns: f64,
    current_utilization: f64,
    windows: u64,
    utilization_sum: f64,
    peak_utilization: f64,
}

impl L2Bus {
    /// Builds the bus model with `service_ns` occupancy per access.
    #[must_use]
    pub fn new(service_ns: f64) -> Self {
        Self {
            service_ns,
            window_accesses: 0,
            current_queue_ns: 0.0,
            current_utilization: 0.0,
            windows: 0,
            utilization_sum: 0.0,
            peak_utilization: 0.0,
        }
    }

    /// Notes one access in the current window and returns the queueing
    /// delay to charge it, in nanoseconds.
    #[inline]
    pub fn charge_access(&mut self) -> f64 {
        self.window_accesses += 1;
        self.current_queue_ns
    }

    /// Notes `count` accesses in the current window without reading the
    /// queueing delay — the bulk path used by the inter-cluster
    /// interconnect, whose per-miss penalty is charged from a read-only
    /// snapshot during the parallel phase and whose traffic is summed in
    /// once per window by the serial merge.
    #[inline]
    pub fn note_accesses(&mut self, count: u64) {
        self.window_accesses += count;
    }

    /// Closes the current observation window of `window_ns` wall time: the
    /// window's bus utilisation determines the queueing delay applied to
    /// the next window's accesses.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn end_window(&mut self, window_ns: f64) {
        assert!(window_ns > 0.0, "window must be positive");
        let demand = self.window_accesses as f64 * self.service_ns;
        let utilization = (demand / window_ns).min(0.98);
        self.current_utilization = utilization;
        self.current_queue_ns = self.service_ns * utilization / (2.0 * (1.0 - utilization));
        self.windows += 1;
        self.utilization_sum += utilization;
        self.peak_utilization = self.peak_utilization.max(utilization);
        self.window_accesses = 0;
    }

    /// Queueing delay currently charged per access, in nanoseconds.
    #[must_use]
    pub fn current_queue_ns(&self) -> f64 {
        self.current_queue_ns
    }

    /// Utilisation of the most recently closed window.
    #[must_use]
    pub fn current_utilization(&self) -> f64 {
        self.current_utilization
    }

    /// Mean bus utilisation over all closed windows.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.utilization_sum / self.windows as f64
        }
    }

    /// Highest single-window bus utilisation seen.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.peak_utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_follows_previous_window_utilization() {
        let mut bus = L2Bus::new(2.0);
        for _ in 0..1000 {
            assert_eq!(bus.charge_access(), 0.0, "first window is queue-free");
        }
        bus.end_window(5000.0);
        assert!((bus.current_utilization() - 0.4).abs() < 1e-9);
        assert!((bus.current_queue_ns() - 2.0 * 0.4 / 1.2).abs() < 1e-9);
        assert!(bus.charge_access() > 0.0);
    }

    #[test]
    fn utilization_capped_below_one() {
        let mut bus = L2Bus::new(2.0);
        for _ in 0..1_000_000 {
            let _ = bus.charge_access();
        }
        bus.end_window(5000.0);
        assert!(bus.peak_utilization() <= 0.98);
        assert!(bus.current_queue_ns().is_finite());
    }
}
