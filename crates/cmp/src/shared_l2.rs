//! Shared L2 with bus contention for the full-CMP validation simulator.

use gpm_microarch::{AccessOutcome, CacheConfig, MemorySubsystem, SetAssocCache};
use serde::{Deserialize, Serialize};

/// Geometry and timing of the shared L2 and its bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedL2Config {
    /// Cache geometry (the paper's 2 MB, 4-way, 128 B unified L2).
    pub cache: CacheConfig,
    /// L2 array access latency in nanoseconds.
    pub l2_latency_ns: f64,
    /// Main-memory latency in nanoseconds (added on a miss).
    pub memory_latency_ns: f64,
    /// Bus occupancy per L2 access in nanoseconds — the bandwidth knob that
    /// turns concurrent traffic from several cores into queueing delay.
    pub service_ns: f64,
}

impl Default for SharedL2Config {
    fn default() -> Self {
        Self {
            cache: CacheConfig::new(2 * 1024 * 1024, 4, 128),
            l2_latency_ns: 9.0,
            memory_latency_ns: 77.0,
            service_ns: 2.0,
        }
    }
}

/// A shared L2 + memory behind a bandwidth-limited bus.
///
/// Capacity contention is modelled exactly (one shared tag array for all
/// cores). Bandwidth contention uses a windowed queueing model: the
/// simulation driver closes an observation window every synchronisation
/// quantum via [`end_window`], the bus utilisation of that window sets the
/// queueing delay charged to every access of the next window
/// (`w = s·ρ/(2(1−ρ))`, the M/D/1 mean wait). This is deliberately
/// rate-based rather than event-timestamped: the cores advance round-robin
/// with drifting local clocks, and absolute-timestamp arbitration would be
/// unstable under that interleaving.
///
/// [`end_window`]: SharedL2::end_window
#[derive(Debug, Clone)]
pub struct SharedL2 {
    cache: SetAssocCache,
    config: SharedL2Config,
    window_accesses: u64,
    current_queue_ns: f64,
    current_utilization: f64,
    windows: u64,
    utilization_sum: f64,
    peak_utilization: f64,
    accesses: u64,
}

impl SharedL2 {
    /// Builds the shared L2.
    ///
    /// # Panics
    ///
    /// Panics if the cache geometry is invalid.
    #[must_use]
    pub fn new(config: SharedL2Config) -> Self {
        Self {
            cache: SetAssocCache::new(config.cache),
            config,
            window_accesses: 0,
            current_queue_ns: 0.0,
            current_utilization: 0.0,
            windows: 0,
            utilization_sum: 0.0,
            peak_utilization: 0.0,
            accesses: 0,
        }
    }

    /// The tag array (for diagnostics).
    #[must_use]
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    /// Total accesses served.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Closes the current observation window of `window_ns` wall time: the
    /// window's bus utilisation determines the queueing delay applied to
    /// the next window's accesses.
    pub fn end_window(&mut self, window_ns: f64) {
        assert!(window_ns > 0.0, "window must be positive");
        let demand = self.window_accesses as f64 * self.config.service_ns;
        let utilization = (demand / window_ns).min(0.98);
        self.current_utilization = utilization;
        self.current_queue_ns = self.config.service_ns * utilization / (2.0 * (1.0 - utilization));
        self.windows += 1;
        self.utilization_sum += utilization;
        self.peak_utilization = self.peak_utilization.max(utilization);
        self.window_accesses = 0;
    }

    /// Queueing delay currently charged per access, in nanoseconds.
    #[must_use]
    pub fn current_queue_ns(&self) -> f64 {
        self.current_queue_ns
    }

    /// Mean bus utilisation over all closed windows.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.utilization_sum / self.windows as f64
        }
    }

    /// Highest single-window bus utilisation seen.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.peak_utilization
    }
}

impl Default for SharedL2 {
    fn default() -> Self {
        Self::new(SharedL2Config::default())
    }
}

impl MemorySubsystem for SharedL2 {
    fn access(&mut self, addr: u64, _now_ns: f64) -> (f64, bool) {
        self.accesses += 1;
        self.window_accesses += 1;
        let queue = self.current_queue_ns;
        match self.cache.access(addr) {
            AccessOutcome::Hit => (queue + self.config.l2_latency_ns, true),
            AccessOutcome::Miss => (
                queue + self.config.l2_latency_ns + self.config.memory_latency_ns,
                false,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_latencies() {
        let mut l2 = SharedL2::default();
        let (lat_miss, hit) = l2.access(0x1000, 0.0);
        assert!(!hit);
        assert!((lat_miss - 86.0).abs() < 1e-9);
        let (lat_hit, hit) = l2.access(0x1000, 0.0);
        assert!(hit);
        assert!((lat_hit - 9.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_sets_next_window_queue() {
        let mut l2 = SharedL2::default();
        // 1000 accesses × 2 ns in a 5000 ns window: ρ = 0.4.
        for i in 0..1000 {
            let _ = l2.access(i * 128, 0.0);
        }
        l2.end_window(5000.0);
        assert!((l2.average_utilization() - 0.4).abs() < 1e-9);
        // M/D/1 wait: 2 × 0.4 / (2 × 0.6) = 0.666… ns.
        assert!((l2.current_queue_ns() - 2.0 * 0.4 / 1.2).abs() < 1e-9);
        let (lat, _) = l2.access(0xdead_0000, 0.0);
        assert!(lat > 86.0, "queue delay charged: {lat}");
    }

    #[test]
    fn idle_window_has_no_queue() {
        let mut l2 = SharedL2::default();
        l2.end_window(5000.0);
        assert_eq!(l2.current_queue_ns(), 0.0);
        assert_eq!(l2.average_utilization(), 0.0);
    }

    #[test]
    fn utilization_is_capped_and_stable() {
        let mut l2 = SharedL2::default();
        for _ in 0..10 {
            for i in 0..100_000u64 {
                let _ = l2.access(i * 128, 0.0);
            }
            l2.end_window(5000.0); // demand 40× capacity
        }
        assert!(l2.peak_utilization() <= 0.98);
        assert!(l2.current_queue_ns().is_finite());
        assert!(l2.current_queue_ns() < 100.0, "bounded queue");
    }

    #[test]
    fn capacity_contention_between_streams() {
        // Two interleaved 1.5 MB streams overflow the 2 MB L2 even though
        // each would fit alone.
        let mut l2 = SharedL2::default();
        let lines = (1_536_000 / 128) as u64;
        let mut misses_second_round = 0;
        for round in 0..2 {
            for i in 0..lines {
                let (_, hit_a) = l2.access(i * 128, 0.0);
                let (_, hit_b) = l2.access(0x1000_0000 + i * 128, 0.0);
                if round == 1 {
                    misses_second_round += u64::from(!hit_a) + u64::from(!hit_b);
                }
            }
        }
        assert!(
            misses_second_round > lines,
            "3 MB of combined working set must keep missing: {misses_second_round}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        SharedL2::default().end_window(0.0);
    }
}
