//! Shared L2 with bus contention for the full-CMP validation simulator.
//!
//! The model is split in two halves so the two-phase quantum protocol can
//! replay request logs cheaply:
//!
//! * [`L2Lookup`] — the pure cache: one shared tag array plus fixed array
//!   and memory latencies. Stateless apart from the tags; one call per
//!   request.
//! * [`L2Bus`] — the bandwidth model: windowed M/D/1 queue accounting.
//!
//! [`SharedL2`] composes the two and serves both the inline path (a core
//! calling through [`MemorySubsystem`]) and the replay path
//! ([`SharedL2::replay_access`]) with identical arithmetic.

use gpm_microarch::{AccessOutcome, CacheConfig, MemorySubsystem, SetAssocCache};
use serde::{Deserialize, Serialize};

use crate::L2Bus;

/// Geometry and timing of the shared L2 and its bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedL2Config {
    /// Cache geometry (the paper's 2 MB, 4-way, 128 B unified L2).
    pub cache: CacheConfig,
    /// L2 array access latency in nanoseconds.
    pub l2_latency_ns: f64,
    /// Main-memory latency in nanoseconds (added on a miss).
    pub memory_latency_ns: f64,
    /// Bus occupancy per L2 access in nanoseconds — the bandwidth knob that
    /// turns concurrent traffic from several cores into queueing delay.
    pub service_ns: f64,
}

impl Default for SharedL2Config {
    fn default() -> Self {
        Self {
            cache: CacheConfig::new(2 * 1024 * 1024, 4, 128),
            l2_latency_ns: 9.0,
            memory_latency_ns: 77.0,
            service_ns: 2.0,
        }
    }
}

/// The capacity half of the shared L2: one tag array for all cores, plus
/// the fixed hit/miss latencies. No contention state — replaying a request
/// through here costs one cache probe.
#[derive(Debug, Clone)]
pub struct L2Lookup {
    cache: SetAssocCache,
    l2_latency_ns: f64,
    memory_latency_ns: f64,
}

impl L2Lookup {
    /// Builds the tag array and latency pair from the shared config.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the cache geometry
    /// is invalid.
    pub fn new(config: &SharedL2Config) -> gpm_types::Result<Self> {
        Ok(Self {
            cache: SetAssocCache::new(config.cache)?,
            l2_latency_ns: config.l2_latency_ns,
            memory_latency_ns: config.memory_latency_ns,
        })
    }

    /// Probes (and updates) the tag array. Returns the access's base
    /// latency — array latency, plus memory latency on a miss — and
    /// whether it hit.
    #[inline]
    pub fn probe(&mut self, addr: u64) -> (f64, bool) {
        match self.cache.access(addr) {
            AccessOutcome::Hit => (self.l2_latency_ns, true),
            AccessOutcome::Miss => (self.l2_latency_ns + self.memory_latency_ns, false),
        }
    }

    /// The tag array (for diagnostics).
    #[must_use]
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

/// A shared L2 + memory behind a bandwidth-limited bus.
///
/// Capacity contention is modelled exactly (one shared tag array for all
/// cores, [`L2Lookup`]). Bandwidth contention uses the windowed queueing
/// model of [`L2Bus`]: the simulation driver closes an observation window
/// every synchronisation quantum via [`end_window`], and the bus
/// utilisation of that window sets the queueing delay charged to every
/// access of the next window.
///
/// [`end_window`]: SharedL2::end_window
#[derive(Debug, Clone)]
pub struct SharedL2 {
    lookup: L2Lookup,
    bus: L2Bus,
    accesses: u64,
}

impl SharedL2 {
    /// Builds the shared L2.
    ///
    /// # Errors
    ///
    /// Returns [`gpm_types::GpmError::InvalidConfig`] if the cache geometry
    /// is invalid.
    pub fn new(config: SharedL2Config) -> gpm_types::Result<Self> {
        Ok(Self {
            lookup: L2Lookup::new(&config)?,
            bus: L2Bus::new(config.service_ns),
            accesses: 0,
        })
    }

    /// The tag array (for diagnostics).
    #[must_use]
    pub fn cache(&self) -> &SetAssocCache {
        self.lookup.cache()
    }

    /// Total accesses served (inline and replayed).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Serves one request — the single arbitration point shared by the
    /// inline [`MemorySubsystem`] path and the phase-2 replay of deferred
    /// request logs. Returns `(total_latency_ns, l2_hit)` where the total
    /// includes the current window's queueing delay.
    #[inline]
    pub fn replay_access(&mut self, addr: u64) -> (f64, bool) {
        self.accesses += 1;
        let queue = self.bus.charge_access();
        let (base, hit) = self.lookup.probe(addr);
        (queue + base, hit)
    }

    /// Closes the current observation window of `window_ns` wall time: the
    /// window's bus utilisation determines the queueing delay applied to
    /// the next window's accesses.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is not positive.
    pub fn end_window(&mut self, window_ns: f64) {
        self.bus.end_window(window_ns);
    }

    /// Queueing delay currently charged per access, in nanoseconds.
    #[must_use]
    pub fn current_queue_ns(&self) -> f64 {
        self.bus.current_queue_ns()
    }

    /// Mean bus utilisation over all closed windows.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        self.bus.average_utilization()
    }

    /// Highest single-window bus utilisation seen.
    #[must_use]
    pub fn peak_utilization(&self) -> f64 {
        self.bus.peak_utilization()
    }
}

impl Default for SharedL2 {
    fn default() -> Self {
        Self::new(SharedL2Config::default()).expect("default shared-L2 geometry is valid")
    }
}

impl MemorySubsystem for SharedL2 {
    fn access(&mut self, addr: u64, _now_ns: f64) -> (f64, bool) {
        self.replay_access(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_latencies() {
        let mut l2 = SharedL2::default();
        let (lat_miss, hit) = l2.access(0x1000, 0.0);
        assert!(!hit);
        assert!((lat_miss - 86.0).abs() < 1e-9);
        let (lat_hit, hit) = l2.access(0x1000, 0.0);
        assert!(hit);
        assert!((lat_hit - 9.0).abs() < 1e-9);
    }

    #[test]
    fn replay_matches_inline_access() {
        let mut inline = SharedL2::default();
        let mut replayed = SharedL2::default();
        for i in 0..5000u64 {
            let addr = (i * 977) % (4 * 1024 * 1024);
            assert_eq!(inline.access(addr, 0.0), replayed.replay_access(addr));
            if i % 1000 == 999 {
                inline.end_window(5000.0);
                replayed.end_window(5000.0);
            }
        }
        assert_eq!(inline.accesses(), replayed.accesses());
    }

    #[test]
    fn utilization_sets_next_window_queue() {
        let mut l2 = SharedL2::default();
        // 1000 accesses × 2 ns in a 5000 ns window: ρ = 0.4.
        for i in 0..1000 {
            let _ = l2.access(i * 128, 0.0);
        }
        l2.end_window(5000.0);
        assert!((l2.average_utilization() - 0.4).abs() < 1e-9);
        // M/D/1 wait: 2 × 0.4 / (2 × 0.6) = 0.666… ns.
        assert!((l2.current_queue_ns() - 2.0 * 0.4 / 1.2).abs() < 1e-9);
        let (lat, _) = l2.access(0xdead_0000, 0.0);
        assert!(lat > 86.0, "queue delay charged: {lat}");
    }

    #[test]
    fn idle_window_has_no_queue() {
        let mut l2 = SharedL2::default();
        l2.end_window(5000.0);
        assert_eq!(l2.current_queue_ns(), 0.0);
        assert_eq!(l2.average_utilization(), 0.0);
    }

    #[test]
    fn utilization_is_capped_and_stable() {
        let mut l2 = SharedL2::default();
        for _ in 0..10 {
            for i in 0..100_000u64 {
                let _ = l2.access(i * 128, 0.0);
            }
            l2.end_window(5000.0); // demand 40× capacity
        }
        assert!(l2.peak_utilization() <= 0.98);
        assert!(l2.current_queue_ns().is_finite());
        assert!(l2.current_queue_ns() < 100.0, "bounded queue");
    }

    #[test]
    fn capacity_contention_between_streams() {
        // Two interleaved 1.5 MB streams overflow the 2 MB L2 even though
        // each would fit alone.
        let mut l2 = SharedL2::default();
        let lines = (1_536_000 / 128) as u64;
        let mut misses_second_round = 0;
        for round in 0..2 {
            for i in 0..lines {
                let (_, hit_a) = l2.access(i * 128, 0.0);
                let (_, hit_b) = l2.access(0x1000_0000 + i * 128, 0.0);
                if round == 1 {
                    misses_second_round += u64::from(!hit_a) + u64::from(!hit_b);
                }
            }
        }
        assert!(
            misses_second_round > lines,
            "3 MB of combined working set must keep missing: {misses_second_round}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        SharedL2::default().end_window(0.0);
    }
}
