//! Property tests over the trace-based CMP simulator: conservation laws,
//! time bookkeeping, and mode-schedule independence of the trace data.

use std::sync::Arc;

use gpm_cmp::{SimParams, TraceCmpSim};
use gpm_trace::{BenchmarkTraces, ModeTrace, TraceSample};
use gpm_types::{Micros, ModeCombination, PowerMode};
use proptest::prelude::*;

/// Builds a synthetic trace set with smoothly-varying rate/power derived
/// from a seed (bounded random walk — real 50 µs samples change gradually;
/// step-function traces would expose per-delta Euler-integration leapfrog
/// artifacts that no captured trace exhibits), with exact cubic/linear mode
/// scaling.
fn synthetic_traces(seed: u64, total: u64) -> Arc<BenchmarkTraces> {
    let delta = Micros::new(50.0);
    let delta_s = delta.to_seconds().value();
    let mut x = seed | 1;
    let mut segments = Vec::new();
    let (mut bips, mut power) = (1.2f64, 17.0f64);
    for _ in 0..2000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        bips = (bips + ((x % 41) as f64 - 20.0) / 200.0).clamp(0.2, 2.2);
        power = (power + (((x >> 8) % 31) as f64 - 15.0) / 20.0).clamp(10.0, 24.0);
        segments.push((bips, power));
    }
    let traces = PowerMode::ALL
        .map(|mode| {
            let mut cum = 0.0f64;
            let samples: Vec<TraceSample> = segments
                .iter()
                .map(|&(b, p)| {
                    let bips = b * mode.bips_scale_bound();
                    cum += bips * 1.0e9 * delta_s;
                    TraceSample {
                        instructions_end: cum as u64,
                        power_w: p * mode.power_scale(),
                        bips,
                    }
                })
                .collect();
            ModeTrace::new(mode, delta, samples)
        })
        .to_vec();
    Arc::new(BenchmarkTraces::new(format!("syn{seed}"), total, traces).unwrap())
}

fn mode_of(x: u8) -> PowerMode {
    PowerMode::from_index(usize::from(x) % 3).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: the simulator's position advance equals the sum of the
    /// per-interval observed instruction counts (within rounding), and time
    /// advances by exactly the reported durations.
    #[test]
    fn instruction_and_time_conservation(
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        schedule in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..5), 1..12),
    ) {
        let traces: Vec<_> = seeds.iter().map(|&s| synthetic_traces(s, u64::MAX / 4)).collect();
        let cores = traces.len();
        let mut sim = TraceCmpSim::new(traces, SimParams::default()).unwrap();

        let mut observed_instr = vec![0u64; cores];
        let mut observed_time = 0.0;
        for step in schedule {
            if sim.finished() { break; }
            let modes: ModeCombination =
                (0..cores).map(|i| mode_of(step[i % step.len()])).collect();
            let out = sim.advance_explore(&modes).unwrap();
            for obs in &out.observed {
                observed_instr[obs.core.value()] += obs.instructions;
            }
            observed_time += out.duration.value();
            prop_assert_eq!(out.chip_power.len(), out.chip_bips.len());
            for p in &out.chip_power {
                prop_assert!(*p > 0.0 && p.is_finite());
            }
        }
        let positions = sim.positions();
        for i in 0..cores {
            let diff = positions[i].abs_diff(observed_instr[i]);
            prop_assert!(
                diff <= 1 + observed_time as u64 / 50, // one instruction per delta rounding
                "core {i}: position {} vs observed {}",
                positions[i],
                observed_instr[i]
            );
        }
        prop_assert!((sim.now().value() - observed_time).abs() < 1e-6);
    }

    /// Running entirely in one mode reproduces that mode's native trace
    /// rates: faster modes never deliver less than slower ones.
    #[test]
    fn uniform_mode_ordering(seed in any::<u64>()) {
        let ips_in = |mode: PowerMode| {
            let traces = vec![synthetic_traces(seed, u64::MAX / 4)];
            let mut sim = TraceCmpSim::new(traces, SimParams::default()).unwrap();
            let modes = ModeCombination::uniform(1, mode);
            let mut instr = 0u64;
            let mut time = 0.0;
            for _ in 0..8 {
                let out = sim.advance_explore(&modes).unwrap();
                instr += out.observed[0].instructions;
                time += out.duration.value();
            }
            instr as f64 / time
        };
        let turbo = ips_in(PowerMode::Turbo);
        let eff1 = ips_in(PowerMode::Eff1);
        let eff2 = ips_in(PowerMode::Eff2);
        // Small tolerance: the per-delta integrator samples each mode's
        // trace at slightly different instruction positions.
        prop_assert!(turbo >= eff1 * 0.99, "turbo {turbo} vs eff1 {eff1}");
        prop_assert!(eff1 >= eff2 * 0.99, "eff1 {eff1} vs eff2 {eff2}");
    }

    /// The GALS stall only occurs when a mode actually changes, and equals
    /// the worst per-core transition.
    #[test]
    fn stall_matches_worst_transition(
        from in prop::collection::vec(0u8..3, 1..5),
        to_raw in prop::collection::vec(0u8..3, 1..5),
    ) {
        let cores = from.len();
        let traces: Vec<_> = (0..cores).map(|i| synthetic_traces(i as u64, u64::MAX / 4)).collect();
        let mut sim = TraceCmpSim::new(traces, SimParams::default()).unwrap();
        let first: ModeCombination = from.iter().map(|&x| mode_of(x)).collect();
        let second: ModeCombination =
            (0..cores).map(|i| mode_of(to_raw[i % to_raw.len()])).collect();

        // Initial state is all-Turbo: first advance pays Turbo→first.
        let _ = sim.advance_explore(&first).unwrap();
        let out = sim.advance_explore(&second).unwrap();

        let dvfs = gpm_power::DvfsParams::paper();
        let expected = (0..cores)
            .map(|i| {
                dvfs.transition_time(
                    first.mode(gpm_types::CoreId::new(i)),
                    second.mode(gpm_types::CoreId::new(i)),
                )
            })
            .fold(Micros::ZERO, Micros::max);
        prop_assert!((out.transition_stall.value() - expected.value()).abs() < 1e-9);
    }
}
