//! Property tests over the trace data structures: position lookups, time
//! inversions and windowed aggregates.

use gpm_trace::{ModeTrace, TraceSample};
use gpm_types::{Micros, PowerMode};
use proptest::prelude::*;

/// Strategy: a monotone trace with random per-delta instruction gains and
/// powers.
fn trace_strategy() -> impl Strategy<Value = ModeTrace> {
    prop::collection::vec((1u64..200_000, 5.0f64..30.0, 0.01f64..4.0), 1..300).prop_map(|steps| {
        let mut cum = 0u64;
        let samples = steps
            .into_iter()
            .map(|(gain, power_w, bips)| {
                cum += gain;
                TraceSample {
                    instructions_end: cum,
                    power_w,
                    bips,
                }
            })
            .collect();
        ModeTrace::new(PowerMode::Turbo, Micros::new(50.0), samples)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `at(pos)` always returns the sample whose interval covers `pos`.
    #[test]
    fn at_returns_covering_sample(trace in trace_strategy(), pos in any::<u64>()) {
        let pos = pos % (trace.total_instructions() + 10);
        let sample = trace.at(pos);
        prop_assert!(sample.instructions_end >= pos.min(trace.total_instructions()));
    }

    /// `instructions_by` is monotone in time and bounded by the total.
    #[test]
    fn instructions_by_monotone(trace in trace_strategy(), a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let i_lo = trace.instructions_by(Micros::new(lo));
        let i_hi = trace.instructions_by(Micros::new(hi));
        prop_assert!(i_lo <= i_hi);
        prop_assert!(i_hi <= trace.total_instructions());
    }

    /// `time_to_reach` inverts `instructions_by` (within one delta of
    /// interpolation error).
    #[test]
    fn time_inverts_instructions(trace in trace_strategy(), t_us in 0.0f64..20_000.0) {
        let t = Micros::new(t_us.min(trace.duration().value()));
        let instr = trace.instructions_by(t);
        if instr > 0 {
            let back = trace.time_to_reach(instr).expect("within trace");
            prop_assert!(
                (back.value() - t.value()).abs() <= 50.0 + 1e-6,
                "t {} -> {} instr -> {}",
                t.value(),
                instr,
                back.value()
            );
        }
    }

    /// Windowed power averages are bounded by the sample extremes and the
    /// full-trace average equals the mean of all samples.
    #[test]
    fn power_window_bounds(trace in trace_strategy(), t_us in 1.0f64..20_000.0) {
        let (min, max) = trace.samples().iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), s| (lo.min(s.power_w), hi.max(s.power_w)),
        );
        let avg = trace.average_power_until(Micros::new(t_us)).value();
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
        let peak = trace.peak_power_until(Micros::new(t_us)).value();
        prop_assert!(peak <= max + 1e-9);
        prop_assert!(avg <= peak + 1e-9);
        let full = trace.average_power().value();
        let naive: f64 = trace.samples().iter().map(|s| s.power_w).sum::<f64>()
            / trace.samples().len() as f64;
        prop_assert!((full - naive).abs() < 1e-9);
    }
}
