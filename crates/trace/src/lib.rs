//! Per-mode power/performance trace capture — the data that feeds the
//! paper's "fast static trace-based CMP analysis tool".
//!
//! Section 3.1 of the paper: single-threaded Turandot runs are captured once
//! per (benchmark, power mode); the CMP simulator then progresses these
//! traces simultaneously for the benchmarks assigned to different cores.
//! This crate is that capture stage:
//!
//! * [`capture_benchmark`] runs a `gpm-workloads` stream through the
//!   `gpm-microarch` core model at each of the three DVFS operating points,
//!   samples power (via `gpm-power`) and throughput every `delta_sim_time`
//!   (50 µs), and indexes the samples by **cumulative instruction count** —
//!   the alignment key that lets the CMP simulator switch a core between
//!   modes mid-run and keep reading the right program phase.
//! * [`TraceStore`] memoises captures in-process and optionally on disk, so
//!   the experiment harness does not recapture 36 (benchmark × mode) runs
//!   for every figure.
//!
//! # Examples
//!
//! ```no_run
//! use gpm_trace::{CaptureConfig, TraceStore};
//! use gpm_types::PowerMode;
//! use gpm_workloads::SpecBenchmark;
//!
//! let store = TraceStore::new(CaptureConfig::default());
//! let traces = store.get(SpecBenchmark::Mcf)?;
//! let t = traces.trace(PowerMode::Turbo);
//! println!("mcf Turbo avg power: {:.1}", t.average_power());
//! # Ok::<(), gpm_types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod sample;
mod store;

pub use capture::{capture_benchmark, capture_combo, CaptureConfig, CaptureEngine};
pub use sample::{BenchmarkTraces, ModeTrace, TraceSample};
pub use store::TraceStore;
