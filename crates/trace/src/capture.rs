//! Trace capture: single-threaded runs of each benchmark at each mode.

use gpm_microarch::{CoreConfig, CoreModel};
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Micros, PowerMode, Result};
use gpm_workloads::{SpecBenchmark, WorkloadCombo};

use crate::{BenchmarkTraces, ModeTrace, TraceSample};

/// Parameters of a capture campaign.
///
/// The defaults reproduce the paper's setup: POWER4-class core (Table 1),
/// calibrated PowerTimer-like power model, linear three-mode DVFS at 1.3 V /
/// 1 GHz, 50 µs `delta_sim_time`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureConfig {
    /// Core configuration shared by all cores.
    pub core: CoreConfig,
    /// Power model converting activity to watts.
    pub power: PowerModel,
    /// DVFS operating points.
    pub dvfs: DvfsParams,
    /// Sampling interval (`delta_sim_time`, 50 µs in the paper).
    pub delta: Micros,
    /// Optional cap on the simulated region, in instructions. `None` runs
    /// each benchmark's full `total_instructions`; tests use small caps.
    pub instruction_limit: Option<u64>,
    /// Optional cap on the simulated region, as wall time of the *Turbo*
    /// run. Unlike `instruction_limit`, this truncates every benchmark to a
    /// comparable number of explore intervals regardless of its IPC.
    pub duration_limit: Option<Micros>,
    /// Extra instructions captured beyond the region end, as a fraction
    /// (the CMP simulator can read slightly past completion).
    pub margin: f64,
    /// Cycles of cache/predictor warm-up simulated (and discarded) before
    /// sample collection starts.
    pub warmup_cycles: u64,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::power4(),
            power: PowerModel::power4_calibrated(),
            dvfs: DvfsParams::paper(),
            delta: Micros::new(50.0),
            instruction_limit: None,
            duration_limit: None,
            margin: 0.03,
            warmup_cycles: 200_000,
        }
    }
}

impl CaptureConfig {
    /// A configuration with a small instruction cap — fast captures for
    /// tests and examples (the region is truncated, not sampled coarser).
    #[must_use]
    pub fn fast(limit: u64) -> Self {
        Self {
            instruction_limit: Some(limit),
            ..Self::default()
        }
    }

    /// A configuration truncating every benchmark's region to `limit` of
    /// Turbo wall time — each benchmark then spans a comparable number of
    /// explore intervals regardless of its IPC.
    #[must_use]
    pub fn fast_duration(limit: Micros) -> Self {
        Self {
            duration_limit: Some(limit),
            ..Self::default()
        }
    }

    /// The effective region length for `bench` under this configuration,
    /// before any duration-based truncation.
    #[must_use]
    pub fn region_of(&self, bench: SpecBenchmark) -> u64 {
        let total = bench.profile().total_instructions;
        self.instruction_limit.map_or(total, |cap| cap.min(total))
    }
}

/// Captures one benchmark at every power mode.
///
/// Each mode run replays the *same* deterministic instruction stream from
/// the beginning through a fresh core model clocked at that mode's
/// frequency, sampling `(cumulative instructions, power, BIPS)` every
/// `delta`.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn capture_benchmark(bench: SpecBenchmark, config: &CaptureConfig) -> Result<BenchmarkTraces> {
    config.core.validate()?;
    let mut region = config.region_of(bench);
    let margin_of = |r: u64| r + ((r as f64 * config.margin) as u64).max(1000);

    // Capture Turbo first; a duration limit is resolved against it so that
    // all three modes are truncated at the same *instruction* position.
    let turbo_time_cap = config
        .duration_limit
        .map(|d| d * (1.0 + config.margin) + config.delta);
    let turbo = capture_mode(
        bench,
        PowerMode::Turbo,
        margin_of(region),
        turbo_time_cap,
        config,
    );
    if let Some(limit) = config.duration_limit {
        region = region.min(turbo.instructions_by(limit));
    }
    let target = margin_of(region);
    let mut traces = vec![turbo];
    for mode in [PowerMode::Eff1, PowerMode::Eff2] {
        traces.push(capture_mode(bench, mode, target, None, config));
    }
    BenchmarkTraces::new(bench.name(), region, traces)
}

/// Captures every benchmark of `combo` (deduplicated by benchmark).
///
/// Returns one [`BenchmarkTraces`] per *core*, in combo order; duplicated
/// benchmarks share the same capture via clone.
///
/// # Errors
///
/// Propagates capture failures.
pub fn capture_combo(
    combo: &WorkloadCombo,
    config: &CaptureConfig,
) -> Result<Vec<BenchmarkTraces>> {
    let mut unique: Vec<(SpecBenchmark, BenchmarkTraces)> = Vec::new();
    for &bench in combo.benchmarks() {
        if !unique.iter().any(|(b, _)| *b == bench) {
            unique.push((bench, capture_benchmark(bench, config)?));
        }
    }
    Ok(combo
        .benchmarks()
        .iter()
        .map(|b| {
            unique
                .iter()
                .find(|(u, _)| u == b)
                .expect("captured above")
                .1
                .clone()
        })
        .collect())
}

fn capture_mode(
    bench: SpecBenchmark,
    mode: PowerMode,
    target_instructions: u64,
    max_duration: Option<Micros>,
    config: &CaptureConfig,
) -> ModeTrace {
    let freq = config.dvfs.frequency(mode);
    let mut core = CoreModel::new(&config.core, freq);
    let mut stream = bench.stream();
    let delta_cycles = freq.cycles_in(config.delta).value();

    // Warm up caches and predictors; discard the stats and restart the
    // stream so instruction indices line up across modes.
    if config.warmup_cycles > 0 {
        let _ = core.run_cycles(&mut stream, config.warmup_cycles);
        stream = bench.stream();
    }

    let max_samples = max_duration
        .map(|d| (d.value() / config.delta.value()).ceil() as usize)
        .unwrap_or(usize::MAX);
    let mut samples = Vec::new();
    let mut committed = 0u64;
    while committed < target_instructions && samples.len() < max_samples {
        let stats = core.run_cycles(&mut stream, delta_cycles);
        committed += stats.instructions;
        let power = config.power.power(&stats.activity(), mode);
        samples.push(TraceSample {
            instructions_end: committed,
            power_w: power.value(),
            bips: stats.bips_at(freq).value(),
        });
    }
    ModeTrace::new(mode, config.delta, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn fast_config() -> CaptureConfig {
        CaptureConfig::fast(1_500_000)
    }

    #[test]
    fn capture_produces_all_modes() {
        let t = capture_benchmark(SpecBenchmark::Gcc, &fast_config()).unwrap();
        assert_eq!(t.name(), "gcc");
        for mode in PowerMode::ALL {
            assert!(t.trace(mode).samples().len() > 10, "{mode}");
            assert!(t.trace(mode).total_instructions() >= t.total_instructions());
        }
    }

    #[test]
    fn eff_modes_draw_less_power() {
        let t = capture_benchmark(SpecBenchmark::Crafty, &fast_config()).unwrap();
        let p_turbo = t.trace(PowerMode::Turbo).average_power();
        let p_eff1 = t.trace(PowerMode::Eff1).average_power();
        let p_eff2 = t.trace(PowerMode::Eff2).average_power();
        assert!(p_turbo > p_eff1);
        assert!(p_eff1 > p_eff2);
        // Cubic scaling (within activity drift).
        let ratio = p_eff2 / p_turbo;
        assert!(
            (ratio - 0.614).abs() < 0.02,
            "Eff2/Turbo power ratio {ratio}"
        );
    }

    #[test]
    fn cpu_bound_completion_slows_linearly_memory_bound_less() {
        let cfg = fast_config();
        let six = capture_benchmark(SpecBenchmark::Sixtrack, &cfg).unwrap();
        let mcf = capture_benchmark(SpecBenchmark::Mcf, &cfg).unwrap();

        let slow = |t: &BenchmarkTraces| {
            let turbo = t.completion_time(PowerMode::Turbo).unwrap();
            let eff2 = t.completion_time(PowerMode::Eff2).unwrap();
            1.0 - turbo / eff2
        };
        let six_slow = slow(&six);
        let mcf_slow = slow(&mcf);
        assert!((0.10..=0.17).contains(&six_slow), "sixtrack {six_slow}");
        assert!(mcf_slow < 0.07, "mcf {mcf_slow}");
    }

    #[test]
    fn region_respects_instruction_limit() {
        let cfg = CaptureConfig::fast(100_000);
        let t = capture_benchmark(SpecBenchmark::Mesa, &cfg).unwrap();
        assert_eq!(t.total_instructions(), 100_000);
        assert!(t.trace(PowerMode::Turbo).total_instructions() >= 100_000);
    }

    #[test]
    fn capture_combo_shares_duplicates() {
        let cfg = CaptureConfig::fast(200_000);
        let traces = capture_combo(&combos::mcf_mcf_art_art(), &cfg).unwrap();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0], traces[1], "duplicate benchmarks share captures");
        assert_eq!(traces[0].name(), "mcf");
        assert_eq!(traces[2].name(), "art");
    }

    #[test]
    fn captures_are_deterministic() {
        let cfg = CaptureConfig::fast(300_000);
        let a = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        let b = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn power_fluctuates_with_phases() {
        // art has strong phases; its Turbo power trace should swing.
        let cfg = CaptureConfig::fast(3_000_000);
        let t = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        let trace = t.trace(PowerMode::Turbo);
        let spread = trace.peak_power().value()
            - trace
                .samples()
                .iter()
                .map(|s| s.power_w)
                .fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "phase power swing {spread}");
    }
}
