//! Trace capture: deterministic runs of each benchmark at each mode.
//!
//! Each (benchmark, mode) run is an independent simulation; the per-mode
//! captures of one benchmark are spread across the `gpm_par` worker pool
//! without changing the captured bytes.

use gpm_microarch::{CoreConfig, CoreModel, InstructionSource, LaneBatch, PrivateMemory};
use gpm_power::{DvfsParams, PowerModel};
use gpm_types::{Hertz, Micros, PowerMode, Result};
use gpm_workloads::{SharedTape, SpecBenchmark, WorkloadCombo};

use crate::{BenchmarkTraces, ModeTrace, TraceSample};

/// Default cap (in ops) on the shared instruction tape, ~2 GB of buffered
/// micro-ops. Captures whose worst-case op demand fits replay one shared
/// recording across all mode runs; larger ones regenerate the stream per
/// mode. Override with the `GPM_TAPE_MAX_OPS` environment variable.
const TAPE_MAX_OPS: u64 = 48_000_000;

fn tape_max_ops() -> u64 {
    std::env::var("GPM_TAPE_MAX_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(TAPE_MAX_OPS)
}

/// Which stepping engine drives the per-mode capture runs.
///
/// Both engines produce byte-identical traces — the lane kernel steps each
/// lane through the exact scalar scoreboard logic — so this is purely a
/// performance choice, kept selectable so the scalar reference stays
/// exercised (equivalence tests) and measurable (benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaptureEngine {
    /// All power modes of a benchmark batched through one
    /// [`LaneBatch::step_lanes`] kernel call: the modes replay the same
    /// instruction tape at adjacent positions, so a capture costs roughly
    /// one memory pass instead of three and the host overlaps the lanes'
    /// dependency chains.
    #[default]
    LaneBatched,
    /// One scalar [`CoreModel`] per mode, spread across the `gpm_par`
    /// worker pool — the reference implementation the lane kernel is
    /// pinned against.
    Scalar,
}

/// Parameters of a capture campaign.
///
/// The defaults reproduce the paper's setup: POWER4-class core (Table 1),
/// calibrated PowerTimer-like power model, linear three-mode DVFS at 1.3 V /
/// 1 GHz, 50 µs `delta_sim_time`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureConfig {
    /// Core configuration shared by all cores.
    pub core: CoreConfig,
    /// Power model converting activity to watts.
    pub power: PowerModel,
    /// DVFS operating points.
    pub dvfs: DvfsParams,
    /// Sampling interval (`delta_sim_time`, 50 µs in the paper).
    pub delta: Micros,
    /// Optional cap on the simulated region, in instructions. `None` runs
    /// each benchmark's full `total_instructions`; tests use small caps.
    pub instruction_limit: Option<u64>,
    /// Optional cap on the simulated region, as wall time of the *Turbo*
    /// run. Unlike `instruction_limit`, this truncates every benchmark to a
    /// comparable number of explore intervals regardless of its IPC.
    pub duration_limit: Option<Micros>,
    /// Extra instructions captured beyond the region end, as a fraction
    /// (the CMP simulator can read slightly past completion).
    pub margin: f64,
    /// Cycles of cache/predictor warm-up simulated (and discarded) before
    /// sample collection starts.
    pub warmup_cycles: u64,
    /// Stepping engine for the per-mode runs; byte-identical outputs, see
    /// [`CaptureEngine`].
    pub engine: CaptureEngine,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::power4(),
            power: PowerModel::power4_calibrated(),
            dvfs: DvfsParams::paper(),
            delta: Micros::new(50.0),
            instruction_limit: None,
            duration_limit: None,
            margin: 0.03,
            warmup_cycles: 200_000,
            engine: CaptureEngine::default(),
        }
    }
}

impl CaptureConfig {
    /// A configuration with a small instruction cap — fast captures for
    /// tests and examples (the region is truncated, not sampled coarser).
    #[must_use]
    pub fn fast(limit: u64) -> Self {
        Self {
            instruction_limit: Some(limit),
            ..Self::default()
        }
    }

    /// A configuration truncating every benchmark's region to `limit` of
    /// Turbo wall time — each benchmark then spans a comparable number of
    /// explore intervals regardless of its IPC.
    #[must_use]
    pub fn fast_duration(limit: Micros) -> Self {
        Self {
            duration_limit: Some(limit),
            ..Self::default()
        }
    }

    /// The effective region length for `bench` under this configuration,
    /// before any duration-based truncation.
    #[must_use]
    pub fn region_of(&self, bench: SpecBenchmark) -> u64 {
        let total = bench.profile().total_instructions;
        self.instruction_limit.map_or(total, |cap| cap.min(total))
    }
}

/// Captures one benchmark at every power mode.
///
/// Each mode run replays the *same* deterministic instruction stream from
/// the beginning through a fresh core model clocked at that mode's
/// frequency, sampling `(cumulative instructions, power, BIPS)` every
/// `delta`.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn capture_benchmark(bench: SpecBenchmark, config: &CaptureConfig) -> Result<BenchmarkTraces> {
    config.core.validate()?;
    let region = config.region_of(bench);
    let margin_of = |r: u64| r + ((r as f64 * config.margin) as u64).max(1000);

    // Every mode run (and each run's warm-up) replays the same deterministic
    // op sequence, so when the whole demand fits in memory it is generated
    // once into a shared tape and replayed, instead of being regenerated by
    // each of the six passes. The worst-case demand is the margined target
    // plus warm-up consumption (bounded by dispatch width × warm-up cycles)
    // plus one delta interval of run-cycle overshoot.
    let worst_case_ops = margin_of(region) + config.warmup_cycles.saturating_mul(8) + 2_000_000;
    let (region, traces) = if worst_case_ops <= tape_max_ops() {
        // Reserve for the common consumption (the margined target plus
        // typical warm-up drain); rare overshoot just grows the vec.
        let hint = (margin_of(region) + 600_000) as usize;
        let tape = SharedTape::with_capacity_hint(bench.stream(), hint);
        capture_all_modes(&|| tape.reader(), region, &margin_of, config)
    } else {
        capture_all_modes(&|| bench.stream(), region, &margin_of, config)
    };
    BenchmarkTraces::new(bench.name(), region, traces)
}

/// Runs the three per-mode captures over sources built by `make_source`,
/// returning the (possibly duration-truncated) region and the traces in
/// [`PowerMode::ALL`] order.
///
/// Each mode run is a self-contained simulation (fresh core, fresh source),
/// so the captures are independent and run across the worker pool.
/// `parallel_map` preserves slot order, and every run is deterministic on
/// its own inputs, so the assembled traces are byte-identical to a serial
/// loop.
fn capture_all_modes<S: InstructionSource, F: Fn() -> S + Sync>(
    make_source: &F,
    mut region: u64,
    margin_of: &(impl Fn(u64) -> u64 + Sync),
    config: &CaptureConfig,
) -> (u64, Vec<ModeTrace>) {
    let traces = if let Some(limit) = config.duration_limit {
        // A duration limit is resolved against the Turbo run so that all
        // three modes are truncated at the same *instruction* position:
        // Turbo must finish first, then Eff1/Eff2 follow together.
        let turbo_time_cap = limit * (1.0 + config.margin) + config.delta;
        let turbo = capture_modes(
            make_source,
            &[PowerMode::Turbo],
            margin_of(region),
            Some(turbo_time_cap),
            config,
        )
        .pop()
        .expect("one mode in, one trace out");
        region = region.min(turbo.instructions_by(limit));
        let target = margin_of(region);
        let mut traces = vec![turbo];
        traces.extend(capture_modes(
            make_source,
            &[PowerMode::Eff1, PowerMode::Eff2],
            target,
            None,
            config,
        ));
        traces
    } else {
        let target = margin_of(region);
        capture_modes(make_source, &PowerMode::ALL, target, None, config)
    };
    (region, traces)
}

/// Captures `modes` over sources built by `make_source`, dispatching on the
/// configured [`CaptureEngine`]. Both arms produce byte-identical traces in
/// `modes` order: the scalar arm maps independent per-mode simulations over
/// the worker pool, the batched arm runs one lane per mode through a single
/// lockstep kernel call on the calling thread.
fn capture_modes<S: InstructionSource, F: Fn() -> S + Sync>(
    make_source: &F,
    modes: &[PowerMode],
    target_instructions: u64,
    max_duration: Option<Micros>,
    config: &CaptureConfig,
) -> Vec<ModeTrace> {
    match config.engine {
        CaptureEngine::Scalar => gpm_par::parallel_map(modes, |&mode| {
            capture_mode(make_source, mode, target_instructions, max_duration, config)
        }),
        CaptureEngine::LaneBatched => capture_modes_batched(
            make_source,
            modes,
            target_instructions,
            max_duration,
            config,
        ),
    }
}

/// Captures every benchmark of `combo` (deduplicated by benchmark).
///
/// Returns one [`BenchmarkTraces`] per *core*, in combo order; duplicated
/// benchmarks share the same capture via clone.
///
/// # Errors
///
/// Propagates capture failures.
pub fn capture_combo(
    combo: &WorkloadCombo,
    config: &CaptureConfig,
) -> Result<Vec<BenchmarkTraces>> {
    let mut unique: Vec<(SpecBenchmark, BenchmarkTraces)> = Vec::new();
    for &bench in combo.benchmarks() {
        if !unique.iter().any(|(b, _)| *b == bench) {
            unique.push((bench, capture_benchmark(bench, config)?));
        }
    }
    Ok(combo
        .benchmarks()
        .iter()
        .map(|b| {
            unique
                .iter()
                .find(|(u, _)| u == b)
                .expect("captured above")
                .1
                .clone()
        })
        .collect())
}

fn capture_mode<S: InstructionSource>(
    make_source: &impl Fn() -> S,
    mode: PowerMode,
    target_instructions: u64,
    max_duration: Option<Micros>,
    config: &CaptureConfig,
) -> ModeTrace {
    let freq = config.dvfs.frequency(mode);
    let mut core =
        CoreModel::new(&config.core, freq).expect("core config validated by capture entry points");
    let mut stream = make_source();
    let delta_cycles = freq.cycles_in(config.delta).value();

    // Warm up caches and predictors; discard the stats and restart the
    // stream so instruction indices line up across modes. The core batches
    // op delivery, so any warm-up ops it fetched but did not execute must be
    // discarded along with the warm-up stream.
    if config.warmup_cycles > 0 {
        let _ = core.run_cycles(&mut stream, config.warmup_cycles);
        stream = make_source();
        core.discard_pending_ops();
    }

    let max_samples = max_duration
        .map(|d| (d.value() / config.delta.value()).ceil() as usize)
        .unwrap_or(usize::MAX);
    let mut samples = Vec::new();
    let mut committed = 0u64;
    while committed < target_instructions && samples.len() < max_samples {
        let stats = core.run_cycles(&mut stream, delta_cycles);
        committed += stats.instructions;
        let power = config.power.power(&stats.activity(), mode);
        samples.push(TraceSample {
            instructions_end: committed,
            power_w: power.value(),
            bips: stats.bips_at(freq).value(),
        });
    }
    ModeTrace::new(mode, config.delta, samples)
}

/// Batched twin of [`capture_mode`]: one lane per mode through a single
/// [`LaneBatch::step_lanes`] call, so the modes replay the shared tape at
/// adjacent positions (one cache-hot memory pass over the op stream) while
/// the host overlaps their independent dependency chains.
///
/// Every per-mode quantity the scalar path derives (warm-up drain, interval
/// targets, the sample-loop continuation test) is computed per lane with the
/// same arithmetic, so the assembled traces are byte-identical.
fn capture_modes_batched<S: InstructionSource>(
    make_source: &impl Fn() -> S,
    modes: &[PowerMode],
    target_instructions: u64,
    max_duration: Option<Micros>,
    config: &CaptureConfig,
) -> Vec<ModeTrace> {
    let lanes = modes.len();
    let freqs: Vec<Hertz> = modes.iter().map(|&m| config.dvfs.frequency(m)).collect();
    let mut batch = LaneBatch::new(&config.core, &freqs)
        .expect("core config validated by capture entry points");
    let mut memories: Vec<PrivateMemory> = (0..lanes)
        .map(|_| PrivateMemory::new(&config.core).expect("validated"))
        .collect();
    let delta_cycles: Vec<u64> = freqs
        .iter()
        .map(|f| f.cycles_in(config.delta).value())
        .collect();

    // Warm up caches and predictors, then restart every lane's stream so
    // instruction indices line up across modes; warm-up stats are discarded
    // by a callback that never extends the segment.
    if config.warmup_cycles > 0 {
        let mut warm: Vec<S> = (0..lanes).map(|_| make_source()).collect();
        let targets = vec![config.warmup_cycles; lanes];
        batch.step_lanes(&mut warm, &mut memories, &targets, |_, _| None);
        batch.discard_pending_ops();
    }

    let max_samples = max_duration
        .map(|d| (d.value() / config.delta.value()).ceil() as usize)
        .unwrap_or(usize::MAX);
    let mut samples: Vec<Vec<TraceSample>> = vec![Vec::new(); lanes];
    let mut committed = vec![0u64; lanes];
    // The scalar loop tests its bounds *before* the first interval; an
    // already-satisfied bound must produce zero samples here too.
    let live = target_instructions > 0 && max_samples > 0;
    let targets: Vec<u64> = if live {
        delta_cycles.clone()
    } else {
        vec![0; lanes]
    };
    let mut sources: Vec<S> = (0..lanes).map(|_| make_source()).collect();
    batch.step_lanes(&mut sources, &mut memories, &targets, |lane, stats| {
        if !live {
            return None;
        }
        committed[lane] += stats.instructions;
        let power = config.power.power(&stats.activity(), modes[lane]);
        samples[lane].push(TraceSample {
            instructions_end: committed[lane],
            power_w: power.value(),
            bips: stats.bips_at(freqs[lane]).value(),
        });
        if committed[lane] < target_instructions && samples[lane].len() < max_samples {
            Some(delta_cycles[lane])
        } else {
            None
        }
    });
    modes
        .iter()
        .zip(samples)
        .map(|(&mode, s)| ModeTrace::new(mode, config.delta, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn fast_config() -> CaptureConfig {
        CaptureConfig::fast(1_500_000)
    }

    #[test]
    fn capture_produces_all_modes() {
        let t = capture_benchmark(SpecBenchmark::Gcc, &fast_config()).unwrap();
        assert_eq!(t.name(), "gcc");
        for mode in PowerMode::ALL {
            assert!(t.trace(mode).samples().len() > 10, "{mode}");
            assert!(t.trace(mode).total_instructions() >= t.total_instructions());
        }
    }

    #[test]
    fn eff_modes_draw_less_power() {
        let t = capture_benchmark(SpecBenchmark::Crafty, &fast_config()).unwrap();
        let p_turbo = t.trace(PowerMode::Turbo).average_power();
        let p_eff1 = t.trace(PowerMode::Eff1).average_power();
        let p_eff2 = t.trace(PowerMode::Eff2).average_power();
        assert!(p_turbo > p_eff1);
        assert!(p_eff1 > p_eff2);
        // Cubic scaling (within activity drift).
        let ratio = p_eff2 / p_turbo;
        assert!(
            (ratio - 0.614).abs() < 0.02,
            "Eff2/Turbo power ratio {ratio}"
        );
    }

    #[test]
    fn cpu_bound_completion_slows_linearly_memory_bound_less() {
        let cfg = fast_config();
        let six = capture_benchmark(SpecBenchmark::Sixtrack, &cfg).unwrap();
        let mcf = capture_benchmark(SpecBenchmark::Mcf, &cfg).unwrap();

        let slow = |t: &BenchmarkTraces| {
            let turbo = t.completion_time(PowerMode::Turbo).unwrap();
            let eff2 = t.completion_time(PowerMode::Eff2).unwrap();
            1.0 - turbo / eff2
        };
        let six_slow = slow(&six);
        let mcf_slow = slow(&mcf);
        assert!((0.10..=0.17).contains(&six_slow), "sixtrack {six_slow}");
        assert!(mcf_slow < 0.07, "mcf {mcf_slow}");
    }

    #[test]
    fn region_respects_instruction_limit() {
        let cfg = CaptureConfig::fast(100_000);
        let t = capture_benchmark(SpecBenchmark::Mesa, &cfg).unwrap();
        assert_eq!(t.total_instructions(), 100_000);
        assert!(t.trace(PowerMode::Turbo).total_instructions() >= 100_000);
    }

    #[test]
    fn capture_combo_shares_duplicates() {
        let cfg = CaptureConfig::fast(200_000);
        let traces = capture_combo(&combos::mcf_mcf_art_art(), &cfg).unwrap();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0], traces[1], "duplicate benchmarks share captures");
        assert_eq!(traces[0].name(), "mcf");
        assert_eq!(traces[2].name(), "art");
    }

    #[test]
    fn captures_are_deterministic() {
        let cfg = CaptureConfig::fast(300_000);
        let a = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        let b = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn power_fluctuates_with_phases() {
        // art has strong phases; its Turbo power trace should swing.
        let cfg = CaptureConfig::fast(3_000_000);
        let t = capture_benchmark(SpecBenchmark::Art, &cfg).unwrap();
        let trace = t.trace(PowerMode::Turbo);
        let spread = trace.peak_power().value()
            - trace
                .samples()
                .iter()
                .map(|s| s.power_w)
                .fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "phase power swing {spread}");
    }
}
