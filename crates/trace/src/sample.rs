//! Trace data structures: per-delta samples, per-mode traces, per-benchmark
//! trace sets.

use gpm_types::{Bips, GpmError, Micros, PowerMode, Result, Watts};
use serde::{Deserialize, Serialize};

/// One `delta_sim_time` sample of a single-threaded run at a fixed mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Cumulative committed instructions at the *end* of this sample.
    pub instructions_end: u64,
    /// Average core power over the sample, in watts.
    pub power_w: f64,
    /// Throughput over the sample, in BIPS.
    pub bips: f64,
}

impl TraceSample {
    /// Power as a typed quantity.
    #[must_use]
    pub fn power(&self) -> Watts {
        Watts::new(self.power_w)
    }

    /// Throughput as a typed quantity.
    #[must_use]
    pub fn throughput(&self) -> Bips {
        Bips::new(self.bips)
    }
}

/// The complete trace of one benchmark at one power mode: samples every
/// `delta` microseconds, indexed by cumulative instruction count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeTrace {
    mode: PowerMode,
    delta: Micros,
    samples: Vec<TraceSample>,
}

impl ModeTrace {
    /// Assembles a trace from capture output.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or not monotonically increasing in
    /// `instructions_end`.
    #[must_use]
    pub fn new(mode: PowerMode, delta: Micros, samples: Vec<TraceSample>) -> Self {
        assert!(!samples.is_empty(), "a trace needs at least one sample");
        assert!(
            samples
                .windows(2)
                .all(|w| w[0].instructions_end <= w[1].instructions_end),
            "trace samples must be monotone in instruction count"
        );
        Self {
            mode,
            delta,
            samples,
        }
    }

    /// The power mode this trace was captured at.
    #[must_use]
    pub fn mode(&self) -> PowerMode {
        self.mode
    }

    /// Sampling interval (`delta_sim_time`).
    #[must_use]
    pub fn delta(&self) -> Micros {
        self.delta
    }

    /// All samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// The sample covering instruction position `instr` — the behaviour the
    /// program exhibits around that point of its execution in this mode.
    ///
    /// Positions beyond the trace clamp to the last sample (the CMP
    /// simulator may read a core slightly past its benchmark's completion
    /// while waiting for the termination check).
    #[must_use]
    pub fn at(&self, instr: u64) -> &TraceSample {
        let idx = self
            .samples
            .partition_point(|s| s.instructions_end < instr.saturating_add(1));
        &self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Total instructions covered by the trace.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.instructions_end)
    }

    /// Wall-clock duration of the whole captured trace.
    #[must_use]
    pub fn duration(&self) -> Micros {
        self.delta * self.samples.len() as f64
    }

    /// Wall-clock time at which the run first reaches `instr` cumulative
    /// instructions (linear interpolation inside a sample); `None` if the
    /// trace never gets there.
    #[must_use]
    pub fn time_to_reach(&self, instr: u64) -> Option<Micros> {
        if instr == 0 {
            return Some(Micros::ZERO);
        }
        let idx = self.samples.partition_point(|s| s.instructions_end < instr);
        if idx >= self.samples.len() {
            return None;
        }
        let end = self.samples[idx].instructions_end;
        let start = if idx == 0 {
            0
        } else {
            self.samples[idx - 1].instructions_end
        };
        let frac = if end == start {
            1.0
        } else {
            (instr - start) as f64 / (end - start) as f64
        };
        Some(self.delta * (idx as f64 + frac))
    }

    /// Cumulative instructions completed by wall time `t` (linear
    /// interpolation inside a sample; clamps to the trace end).
    #[must_use]
    pub fn instructions_by(&self, t: Micros) -> u64 {
        if self.samples.is_empty() || t.value() <= 0.0 {
            return 0;
        }
        let steps = t.value() / self.delta.value();
        let idx = steps.floor() as usize;
        if idx >= self.samples.len() {
            return self.total_instructions();
        }
        let start = if idx == 0 {
            0
        } else {
            self.samples[idx - 1].instructions_end
        };
        let end = self.samples[idx].instructions_end;
        let frac = steps - idx as f64;
        start + ((end - start) as f64 * frac) as u64
    }

    /// Mean power over the window `[0, t)`; clamps to the trace end.
    #[must_use]
    pub fn average_power_until(&self, t: Micros) -> Watts {
        let count = ((t.value() / self.delta.value()).ceil() as usize).clamp(1, self.samples.len());
        let sum: f64 = self.samples[..count].iter().map(|s| s.power_w).sum();
        Watts::new(sum / count as f64)
    }

    /// Peak sample power over the window `[0, t)`; clamps to the trace end.
    #[must_use]
    pub fn peak_power_until(&self, t: Micros) -> Watts {
        let count = ((t.value() / self.delta.value()).ceil() as usize).clamp(1, self.samples.len());
        Watts::new(
            self.samples[..count]
                .iter()
                .map(|s| s.power_w)
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Mean power over the whole trace.
    #[must_use]
    pub fn average_power(&self) -> Watts {
        let sum: f64 = self.samples.iter().map(|s| s.power_w).sum();
        Watts::new(sum / self.samples.len() as f64)
    }

    /// Peak sample power over the whole trace.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        Watts::new(
            self.samples
                .iter()
                .map(|s| s.power_w)
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Mean throughput over the whole trace.
    #[must_use]
    pub fn average_bips(&self) -> Bips {
        let sum: f64 = self.samples.iter().map(|s| s.bips).sum();
        Bips::new(sum / self.samples.len() as f64)
    }
}

/// The three per-mode traces of one benchmark, plus its region length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkTraces {
    name: String,
    total_instructions: u64,
    traces: Vec<ModeTrace>,
}

impl BenchmarkTraces {
    /// Assembles the per-benchmark trace set.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::MissingTrace`] if any of the three modes is
    /// absent, and [`GpmError::TraceFormat`] on duplicates.
    pub fn new(
        name: impl Into<String>,
        total_instructions: u64,
        traces: Vec<ModeTrace>,
    ) -> Result<Self> {
        let name = name.into();
        for mode in PowerMode::ALL {
            match traces.iter().filter(|t| t.mode() == mode).count() {
                0 => {
                    return Err(GpmError::MissingTrace {
                        benchmark: name,
                        mode,
                    })
                }
                1 => {}
                n => {
                    return Err(GpmError::TraceFormat(format!(
                        "{n} traces for mode {mode} of `{name}`"
                    )))
                }
            }
        }
        Ok(Self {
            name,
            total_instructions,
            traces,
        })
    }

    /// Benchmark name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions in the benchmark's region; the CMP run terminates when
    /// the first core reaches its benchmark's total.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// The trace captured at `mode`.
    #[must_use]
    pub fn trace(&self, mode: PowerMode) -> &ModeTrace {
        self.traces
            .iter()
            .find(|t| t.mode() == mode)
            .expect("validated in constructor")
    }

    /// Native (uninterrupted, single-mode) completion time of the region at
    /// `mode`; `None` if the capture was too short.
    #[must_use]
    pub fn completion_time(&self, mode: PowerMode) -> Option<Micros> {
        self.trace(mode).time_to_reach(self.total_instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(mode: PowerMode, per_delta: &[(u64, f64, f64)]) -> ModeTrace {
        let samples = per_delta
            .iter()
            .map(|&(instructions_end, power_w, bips)| TraceSample {
                instructions_end,
                power_w,
                bips,
            })
            .collect();
        ModeTrace::new(mode, Micros::new(50.0), samples)
    }

    fn simple() -> ModeTrace {
        trace(
            PowerMode::Turbo,
            &[(100, 20.0, 2.0), (250, 18.0, 3.0), (300, 10.0, 1.0)],
        )
    }

    #[test]
    fn lookup_by_instruction_position() {
        let t = simple();
        assert_eq!(t.at(0).power_w, 20.0);
        assert_eq!(t.at(99).power_w, 20.0);
        // Position 100 is already covered by the second sample.
        assert_eq!(t.at(100).power_w, 18.0);
        assert_eq!(t.at(250).power_w, 10.0);
        // Beyond the end clamps.
        assert_eq!(t.at(10_000).power_w, 10.0);
    }

    #[test]
    fn aggregates() {
        let t = simple();
        assert!((t.average_power().value() - 16.0).abs() < 1e-12);
        assert_eq!(t.peak_power().value(), 20.0);
        assert!((t.average_bips().value() - 2.0).abs() < 1e-12);
        assert_eq!(t.total_instructions(), 300);
        assert_eq!(t.duration(), Micros::new(150.0));
    }

    #[test]
    fn instructions_by_inverts_time_to_reach() {
        let t = simple();
        assert_eq!(t.instructions_by(Micros::ZERO), 0);
        assert_eq!(t.instructions_by(Micros::new(50.0)), 100);
        // Halfway through the second sample: 100 + 75 = 175.
        assert_eq!(t.instructions_by(Micros::new(75.0)), 175);
        assert_eq!(t.instructions_by(Micros::new(150.0)), 300);
        assert_eq!(t.instructions_by(Micros::new(1e9)), 300);
    }

    #[test]
    fn windowed_power_aggregates() {
        let t = simple();
        assert_eq!(t.average_power_until(Micros::new(50.0)).value(), 20.0);
        assert_eq!(t.average_power_until(Micros::new(100.0)).value(), 19.0);
        assert_eq!(t.peak_power_until(Micros::new(150.0)).value(), 20.0);
        // Clamps beyond the end.
        assert_eq!(t.average_power_until(Micros::new(1e9)).value(), 16.0);
    }

    #[test]
    fn time_to_reach_interpolates() {
        let t = simple();
        assert_eq!(t.time_to_reach(0), Some(Micros::ZERO));
        // 100 instructions = exactly the first 50 µs sample.
        assert!((t.time_to_reach(100).unwrap().value() - 50.0).abs() < 1e-9);
        // 175 = halfway through the second sample.
        assert!((t.time_to_reach(175).unwrap().value() - 75.0).abs() < 1e-9);
        assert!((t.time_to_reach(300).unwrap().value() - 150.0).abs() < 1e-9);
        assert_eq!(t.time_to_reach(301), None);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = ModeTrace::new(PowerMode::Turbo, Micros::new(50.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_panics() {
        let _ = trace(PowerMode::Turbo, &[(100, 1.0, 1.0), (50, 1.0, 1.0)]);
    }

    #[test]
    fn benchmark_traces_requires_all_modes() {
        let t = simple();
        let err = BenchmarkTraces::new("x", 300, vec![t.clone()]);
        assert!(matches!(err, Err(GpmError::MissingTrace { .. })));

        let all = vec![
            trace(PowerMode::Turbo, &[(100, 1.0, 2.0)]),
            trace(PowerMode::Eff1, &[(95, 1.0, 1.9)]),
            trace(PowerMode::Eff2, &[(85, 1.0, 1.7)]),
        ];
        let bt = BenchmarkTraces::new("x", 100, all.clone()).unwrap();
        assert_eq!(bt.trace(PowerMode::Eff1).total_instructions(), 95);
        assert_eq!(bt.name(), "x");

        let mut dup = all;
        dup.push(trace(PowerMode::Turbo, &[(1, 1.0, 1.0)]));
        assert!(matches!(
            BenchmarkTraces::new("x", 100, dup),
            Err(GpmError::TraceFormat(_))
        ));
    }

    #[test]
    fn completion_time_uses_total() {
        let bt = BenchmarkTraces::new(
            "x",
            100,
            vec![
                trace(PowerMode::Turbo, &[(100, 1.0, 2.0)]),
                trace(PowerMode::Eff1, &[(95, 1.0, 1.9)]),
                trace(PowerMode::Eff2, &[(85, 1.0, 1.7)]),
            ],
        )
        .unwrap();
        assert!(bt.completion_time(PowerMode::Turbo).is_some());
        // Eff2 capture never reached 100 instructions.
        assert_eq!(bt.completion_time(PowerMode::Eff2), None);
    }
}
