//! In-process (and optional on-disk) memoisation of trace captures.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use gpm_types::{GpmError, Result};
use gpm_workloads::{SpecBenchmark, WorkloadCombo};

use crate::{capture_benchmark, BenchmarkTraces, CaptureConfig};

/// Bump when the trace format or the models feeding it change incompatibly;
/// invalidates all disk-cached captures.
const CACHE_FORMAT_VERSION: u32 = 2;

/// A memoising facade over [`capture_benchmark`].
///
/// Captures are expensive (tens of millions of simulated instructions per
/// benchmark and mode); every experiment shares them. The store is cheap to
/// clone-by-reference via [`Arc`] values and is safe to use from multiple
/// threads.
///
/// # Examples
///
/// ```no_run
/// use gpm_trace::{CaptureConfig, TraceStore};
/// use gpm_workloads::combos;
///
/// let store = TraceStore::new(CaptureConfig::default());
/// let per_core = store.combo(&combos::ammp_mcf_crafty_art())?;
/// assert_eq!(per_core.len(), 4);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug)]
pub struct TraceStore {
    config: CaptureConfig,
    cache: Mutex<HashMap<SpecBenchmark, Arc<BenchmarkTraces>>>,
    disk_dir: Option<PathBuf>,
}

impl TraceStore {
    /// Creates an in-memory store.
    #[must_use]
    pub fn new(config: CaptureConfig) -> Self {
        Self {
            config,
            cache: Mutex::new(HashMap::new()),
            disk_dir: None,
        }
    }

    /// Creates a store that also persists captures as JSON under `dir`
    /// (created on demand), so separate processes (tests, benches) reuse
    /// them. Cache keys include a fingerprint of the capture configuration.
    #[must_use]
    pub fn with_disk_cache(config: CaptureConfig, dir: impl Into<PathBuf>) -> Self {
        Self {
            config,
            cache: Mutex::new(HashMap::new()),
            disk_dir: Some(dir.into()),
        }
    }

    /// The capture configuration used by this store.
    #[must_use]
    pub fn config(&self) -> &CaptureConfig {
        &self.config
    }

    /// Returns the traces of `bench`, capturing them on first use.
    ///
    /// # Errors
    ///
    /// Propagates capture errors; disk-cache I/O problems fall back to
    /// recapture and only error if the capture itself fails.
    pub fn get(&self, bench: SpecBenchmark) -> Result<Arc<BenchmarkTraces>> {
        if let Some(hit) = self.cache.lock().expect("store poisoned").get(&bench) {
            return Ok(Arc::clone(hit));
        }
        let traces = match self.load_from_disk(bench) {
            Some(t) => Arc::new(t),
            None => {
                let t = Arc::new(capture_benchmark(bench, &self.config)?);
                self.save_to_disk(bench, &t);
                t
            }
        };
        self.cache
            .lock()
            .expect("store poisoned")
            .insert(bench, Arc::clone(&traces));
        Ok(traces)
    }

    /// Returns the per-core traces of a combo (duplicates share the same
    /// underlying capture).
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn combo(&self, combo: &WorkloadCombo) -> Result<Vec<Arc<BenchmarkTraces>>> {
        combo.benchmarks().iter().map(|&b| self.get(b)).collect()
    }

    /// Drops all in-memory entries (disk cache untouched).
    pub fn clear(&self) {
        self.cache.lock().expect("store poisoned").clear();
    }

    fn fingerprint(&self, bench: SpecBenchmark) -> u64 {
        let mut h = DefaultHasher::new();
        CACHE_FORMAT_VERSION.hash(&mut h);
        bench.name().hash(&mut h);
        // The capture configuration is not `Hash`; hash its debug rendering,
        // which covers every field.
        format!("{:?}", self.config).hash(&mut h);
        h.finish()
    }

    fn cache_path(&self, bench: SpecBenchmark) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:016x}.json",
                bench.name(),
                self.fingerprint(bench)
            ))
        })
    }

    fn load_from_disk(&self, bench: SpecBenchmark) -> Option<BenchmarkTraces> {
        let path = self.cache_path(bench)?;
        let bytes = std::fs::read(path).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    fn save_to_disk(&self, bench: SpecBenchmark, traces: &BenchmarkTraces) {
        let Some(path) = self.cache_path(bench) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        // Best effort: a failed write just means recapturing next time.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        if let Ok(json) = serde_json::to_vec(traces) {
            let _ = std::fs::write(path, json);
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(CaptureConfig::default())
    }
}

/// Serialisation helpers shared by tests.
impl TraceStore {
    /// Serialises a trace set to JSON (stable format for external tooling).
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::TraceFormat`] on encoding failure.
    pub fn to_json(traces: &BenchmarkTraces) -> Result<String> {
        serde_json::to_string(traces).map_err(|e| GpmError::TraceFormat(e.to_string()))
    }

    /// Parses a trace set from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::TraceFormat`] on malformed input.
    pub fn from_json(json: &str) -> Result<BenchmarkTraces> {
        serde_json::from_str(json).map_err(|e| GpmError::TraceFormat(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TraceStore {
        TraceStore::new(CaptureConfig::fast(200_000))
    }

    #[test]
    fn get_memoises() {
        let s = store();
        let a = s.get(SpecBenchmark::Gap).unwrap();
        let b = s.get(SpecBenchmark::Gap).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
    }

    #[test]
    fn combo_returns_per_core_traces() {
        let s = store();
        let combo = gpm_workloads::combos::art_mcf();
        let traces = s.combo(&combo).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name(), "art");
        assert_eq!(traces[1].name(), "mcf");
    }

    #[test]
    fn clear_drops_memoisation() {
        let s = store();
        let a = s.get(SpecBenchmark::Gap).unwrap();
        s.clear();
        let b = s.get(SpecBenchmark::Gap).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b, "recapture is deterministic");
    }

    #[test]
    fn json_roundtrip() {
        let s = store();
        let t = s.get(SpecBenchmark::Mcf).unwrap();
        let json = TraceStore::to_json(&t).unwrap();
        let back = TraceStore::from_json(&json).unwrap();
        assert_eq!(*t, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            TraceStore::from_json("not json"),
            Err(GpmError::TraceFormat(_))
        ));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "gpm-trace-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let s1 = TraceStore::with_disk_cache(CaptureConfig::fast(150_000), &dir);
        let a = s1.get(SpecBenchmark::Vortex).unwrap();

        // A fresh store with the same config must load from disk and agree.
        let s2 = TraceStore::with_disk_cache(CaptureConfig::fast(150_000), &dir);
        let b = s2.get(SpecBenchmark::Vortex).unwrap();
        assert_eq!(*a, *b);

        // A different config must NOT reuse the file.
        let s3 = TraceStore::with_disk_cache(CaptureConfig::fast(151_000), &dir);
        let c = s3.get(SpecBenchmark::Vortex).unwrap();
        assert_ne!(a.total_instructions(), c.total_instructions());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
