//! In-process (and optional on-disk) memoisation of trace captures.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use gpm_types::{GpmError, Result};
use gpm_workloads::{SpecBenchmark, WorkloadCombo};

use crate::{capture_benchmark, BenchmarkTraces, CaptureConfig};

/// Bump when the trace format or the models feeding it change incompatibly;
/// invalidates all disk-cached captures.
const CACHE_FORMAT_VERSION: u32 = 2;

/// One single-flight cache entry: the first thread to claim the slot runs
/// the capture inside `OnceLock::get_or_init` while every other thread for
/// the same benchmark blocks on the lock and then shares the result.
type CacheSlot = Arc<OnceLock<Result<Arc<BenchmarkTraces>>>>;

/// A memoising facade over [`capture_benchmark`].
///
/// Captures are expensive (tens of millions of simulated instructions per
/// benchmark and mode); every experiment shares them. The store is cheap to
/// clone-by-reference via [`Arc`] values and is safe to use from multiple
/// threads: concurrent cold [`TraceStore::get`] calls for the same benchmark
/// are single-flighted, so each benchmark is captured exactly once no matter
/// how many threads race for it.
///
/// # Examples
///
/// ```no_run
/// use gpm_trace::{CaptureConfig, TraceStore};
/// use gpm_workloads::combos;
///
/// let store = TraceStore::new(CaptureConfig::default());
/// let per_core = store.combo(&combos::ammp_mcf_crafty_art())?;
/// assert_eq!(per_core.len(), 4);
/// # Ok::<(), gpm_types::GpmError>(())
/// ```
#[derive(Debug)]
pub struct TraceStore {
    config: CaptureConfig,
    cache: Mutex<HashMap<SpecBenchmark, CacheSlot>>,
    disk_dir: Option<PathBuf>,
    /// Number of `capture_benchmark` runs (disk-cache loads excluded);
    /// observable via [`TraceStore::captures_performed`] so tests can assert
    /// the single-flight guarantee.
    captures: AtomicUsize,
}

impl TraceStore {
    /// Creates an in-memory store.
    #[must_use]
    pub fn new(config: CaptureConfig) -> Self {
        Self {
            config,
            cache: Mutex::new(HashMap::new()),
            disk_dir: None,
            captures: AtomicUsize::new(0),
        }
    }

    /// Creates a store that also persists captures as JSON under `dir`
    /// (created on demand), so separate processes (tests, benches) reuse
    /// them. Cache keys include a fingerprint of the capture configuration.
    #[must_use]
    pub fn with_disk_cache(config: CaptureConfig, dir: impl Into<PathBuf>) -> Self {
        Self {
            config,
            cache: Mutex::new(HashMap::new()),
            disk_dir: Some(dir.into()),
            captures: AtomicUsize::new(0),
        }
    }

    /// The capture configuration used by this store.
    #[must_use]
    pub fn config(&self) -> &CaptureConfig {
        &self.config
    }

    /// How many actual captures this store has run (cache hits and
    /// disk-cache loads excluded). Tests use this to assert that concurrent
    /// cold `get`s single-flight each benchmark.
    #[must_use]
    pub fn captures_performed(&self) -> usize {
        self.captures.load(Ordering::SeqCst)
    }

    /// Returns the traces of `bench`, capturing them on first use.
    ///
    /// Concurrent calls for the same cold benchmark are single-flighted:
    /// one caller captures while the rest block and share the result, so
    /// the multi-second capture never runs twice.
    ///
    /// # Errors
    ///
    /// Propagates capture errors; disk-cache I/O problems fall back to
    /// recapture and only error if the capture itself fails. A failed
    /// capture is cached: later calls return the same error without
    /// re-running the capture (clear with [`TraceStore::clear`]).
    pub fn get(&self, bench: SpecBenchmark) -> Result<Arc<BenchmarkTraces>> {
        let slot = {
            let mut cache = self.cache.lock().expect("store poisoned");
            Arc::clone(cache.entry(bench).or_default())
        };
        slot.get_or_init(|| self.load_or_capture(bench))
            .as_ref()
            .map(Arc::clone)
            .map_err(Clone::clone)
    }

    /// Returns the per-core traces of a combo (duplicates share the same
    /// underlying capture). Distinct cold benchmarks are captured in
    /// parallel across the worker pool (see `gpm_par`).
    ///
    /// # Errors
    ///
    /// Propagates capture errors; with several failures, the error of the
    /// first (combo-order) failing benchmark is returned, as in the serial
    /// path.
    pub fn combo(&self, combo: &WorkloadCombo) -> Result<Vec<Arc<BenchmarkTraces>>> {
        self.warm_up(combo.benchmarks())?;
        combo.benchmarks().iter().map(|&b| self.get(b)).collect()
    }

    /// Ensures every benchmark in `benches` is captured, fanning distinct
    /// cold benchmarks out across the worker pool. Duplicates are captured
    /// once.
    ///
    /// # Errors
    ///
    /// Propagates capture errors (first failing benchmark in input order).
    pub fn warm_up(&self, benches: &[SpecBenchmark]) -> Result<()> {
        let mut unique: Vec<SpecBenchmark> = Vec::new();
        for &bench in benches {
            if !unique.contains(&bench) {
                unique.push(bench);
            }
        }
        gpm_par::try_parallel_map(&unique, |&bench| self.get(bench).map(drop))?;
        Ok(())
    }

    /// Drops all in-memory entries (disk cache untouched).
    pub fn clear(&self) {
        self.cache.lock().expect("store poisoned").clear();
    }

    fn load_or_capture(&self, bench: SpecBenchmark) -> Result<Arc<BenchmarkTraces>> {
        if let Some(traces) = self.load_from_disk(bench) {
            return Ok(Arc::new(traces));
        }
        self.captures.fetch_add(1, Ordering::SeqCst);
        let traces = Arc::new(capture_benchmark(bench, &self.config)?);
        self.save_to_disk(bench, &traces);
        Ok(traces)
    }

    fn fingerprint(&self, bench: SpecBenchmark) -> u64 {
        let mut h = DefaultHasher::new();
        CACHE_FORMAT_VERSION.hash(&mut h);
        bench.name().hash(&mut h);
        // The capture configuration is not `Hash`; hash its debug rendering,
        // which covers every field.
        format!("{:?}", self.config).hash(&mut h);
        h.finish()
    }

    fn cache_path(&self, bench: SpecBenchmark) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:016x}.json",
                bench.name(),
                self.fingerprint(bench)
            ))
        })
    }

    fn load_from_disk(&self, bench: SpecBenchmark) -> Option<BenchmarkTraces> {
        let path = self.cache_path(bench)?;
        let bytes = std::fs::read(path).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    /// Best-effort persistence: serialise to a uniquely named temp file in
    /// the cache directory, then rename into place. The rename is atomic on
    /// POSIX filesystems, so a concurrent reader never observes a torn JSON
    /// file (which would silently cost it a full recapture).
    fn save_to_disk(&self, bench: SpecBenchmark, traces: &BenchmarkTraces) {
        let Some(path) = self.cache_path(bench) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        // Best effort: a failed write just means recapturing next time.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(json) = serde_json::to_vec(traces) else {
            return;
        };
        static TMP_COUNTER: AtomicUsize = AtomicUsize::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(CaptureConfig::default())
    }
}

/// Serialisation helpers shared by tests.
impl TraceStore {
    /// Serialises a trace set to JSON (stable format for external tooling).
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::TraceFormat`] on encoding failure.
    pub fn to_json(traces: &BenchmarkTraces) -> Result<String> {
        serde_json::to_string(traces).map_err(|e| GpmError::TraceFormat(e.to_string()))
    }

    /// Parses a trace set from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`GpmError::TraceFormat`] on malformed input.
    pub fn from_json(json: &str) -> Result<BenchmarkTraces> {
        serde_json::from_str(json).map_err(|e| GpmError::TraceFormat(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TraceStore {
        TraceStore::new(CaptureConfig::fast(200_000))
    }

    #[test]
    fn get_memoises() {
        let s = store();
        let a = s.get(SpecBenchmark::Gap).unwrap();
        let b = s.get(SpecBenchmark::Gap).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
        assert_eq!(s.captures_performed(), 1);
    }

    #[test]
    fn combo_returns_per_core_traces() {
        let s = store();
        let combo = gpm_workloads::combos::art_mcf();
        let traces = s.combo(&combo).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name(), "art");
        assert_eq!(traces[1].name(), "mcf");
    }

    #[test]
    fn combo_captures_duplicates_once() {
        let s = store();
        let traces = s.combo(&gpm_workloads::combos::mcf_mcf_art_art()).unwrap();
        assert_eq!(traces.len(), 4);
        assert!(Arc::ptr_eq(&traces[0], &traces[1]));
        assert_eq!(
            s.captures_performed(),
            2,
            "one capture per distinct benchmark"
        );
    }

    #[test]
    fn clear_drops_memoisation() {
        let s = store();
        let a = s.get(SpecBenchmark::Gap).unwrap();
        s.clear();
        let b = s.get(SpecBenchmark::Gap).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b, "recapture is deterministic");
    }

    #[test]
    fn concurrent_cold_gets_capture_once() {
        // Regression test for the cold-miss race: the pre-single-flight
        // store dropped its lock between lookup and insert, so N racing
        // threads all ran the multi-second capture. Now exactly one does.
        let s = store();
        let results: Vec<Arc<BenchmarkTraces>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| s.get(SpecBenchmark::Gap).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            s.captures_performed(),
            1,
            "concurrent cold gets must single-flight the capture"
        );
        for traces in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], traces),
                "all callers share one Arc"
            );
        }
    }

    #[test]
    fn warm_up_is_equivalent_to_gets() {
        let s = store();
        s.warm_up(&[SpecBenchmark::Art, SpecBenchmark::Mcf, SpecBenchmark::Art])
            .unwrap();
        assert_eq!(s.captures_performed(), 2);
        let a = s.get(SpecBenchmark::Art).unwrap();
        let b = TraceStore::new(CaptureConfig::fast(200_000))
            .get(SpecBenchmark::Art)
            .unwrap();
        assert_eq!(*a, *b, "warmed-up capture matches a direct one");
    }

    #[test]
    fn json_roundtrip() {
        let s = store();
        let t = s.get(SpecBenchmark::Mcf).unwrap();
        let json = TraceStore::to_json(&t).unwrap();
        let back = TraceStore::from_json(&json).unwrap();
        assert_eq!(*t, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            TraceStore::from_json("not json"),
            Err(GpmError::TraceFormat(_))
        ));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gpm-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let s1 = TraceStore::with_disk_cache(CaptureConfig::fast(150_000), &dir);
        let a = s1.get(SpecBenchmark::Vortex).unwrap();

        // No stray temp files: the atomic save renamed its staging file.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext != "json"))
            .count();
        assert_eq!(leftovers, 0, "temp files must be renamed into place");

        // A fresh store with the same config must load from disk and agree.
        let s2 = TraceStore::with_disk_cache(CaptureConfig::fast(150_000), &dir);
        let b = s2.get(SpecBenchmark::Vortex).unwrap();
        assert_eq!(*a, *b);
        assert_eq!(s2.captures_performed(), 0, "disk hit must not recapture");

        // A different config must NOT reuse the file.
        let s3 = TraceStore::with_disk_cache(CaptureConfig::fast(151_000), &dir);
        let c = s3.get(SpecBenchmark::Vortex).unwrap();
        assert_ne!(a.total_instructions(), c.total_instructions());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
