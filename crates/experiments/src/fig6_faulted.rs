//! Figure 6 extension — policy robustness under injected telemetry and
//! actuation faults (our extension; the paper assumes perfect sensors).
//!
//! The paper's Figure 6 stresses the *budget* (a mid-run drop modelling a
//! cooling failure). This experiment stresses the *control loop itself*:
//! each policy re-runs the four-core workload with the guard rails on while
//! one fault class at a time corrupts its sensors or actuators, and we
//! report how much throughput it gives up and how badly it violates the
//! budget compared with the fault-free run.

use gpm_cmp::TraceCmpSim;
use gpm_core::{
    BudgetSchedule, GlobalManager, MaxBips, Policy, Priority, PullHiPushLo, RunOptions, RunResult,
};
use gpm_faults::FaultPlan;
use gpm_types::Result;
use gpm_workloads::combos;

use crate::render::pct;
use crate::{ExperimentContext, TextTable};

/// Power budget (fraction of the envelope) used for every run.
pub const BUDGET: f64 = 0.80;

/// The fault classes swept, as `(label, spec)`; `None` spec = clean run.
/// Windows are quoted in explore intervals (500 µs each) and sized to fit
/// even the truncated fast-context runs.
pub const FAULT_CLASSES: &[(&str, Option<&str>)] = &[
    ("none", None),
    ("noise", Some("noise@all:std=0.08")),
    ("stale", Some("stale@all:from=2,lag=2")),
    ("dropout", Some("dropout@1:from=3,to=6")),
    ("stuck", Some("stuck@all:from=1,to=6")),
    ("shock", Some("shock:from=4,to=6,frac=0.75")),
];

/// One policy × fault-class outcome.
#[derive(Debug, Clone)]
pub struct FaultedPoint {
    /// Policy name.
    pub policy: String,
    /// Fault class label (one of [`FAULT_CLASSES`]).
    pub fault: String,
    /// Average chip BIPS as a fraction of the same policy's clean run
    /// (1.0 = the fault cost nothing).
    pub relative_bips: f64,
    /// Fraction of explore intervals that overshot the budget.
    pub violation_rate: f64,
    /// Worst single-interval overshoot in watts.
    pub worst_overshoot_w: f64,
    /// Longest run of consecutive over-budget intervals.
    pub longest_violation_run: usize,
    /// Fault events the injection layer recorded.
    pub fault_events: usize,
    /// Guard actions the hardened manager took.
    pub guard_actions: usize,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct Fig6Faulted {
    /// One row per policy × fault class, grouped by policy.
    pub points: Vec<FaultedPoint>,
}

fn point(policy: &str, fault: &str, run: &RunResult, clean_bips: f64) -> FaultedPoint {
    let intervals = run.records.len().max(1);
    FaultedPoint {
        policy: policy.to_owned(),
        fault: fault.to_owned(),
        relative_bips: run.average_chip_bips().value() / clean_bips,
        violation_rate: run.overshoot_intervals() as f64 / intervals as f64,
        worst_overshoot_w: run.worst_overshoot_watts().value(),
        longest_violation_run: run.longest_violation_run(),
        fault_events: run.fault_events.len(),
        guard_actions: run.guard_actions.len(),
    }
}

/// Runs the fault sweep: every policy under every fault class, guards on.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig6Faulted> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let schedule = BudgetSchedule::constant(BUDGET);

    type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("MaxBIPS", Box::new(|| Box::new(MaxBips::new()))),
        ("Priority", Box::new(|| Box::new(Priority::new()))),
        ("pullHiPushLo", Box::new(|| Box::new(PullHiPushLo::new()))),
    ];

    let mut points = Vec::new();
    for (name, make) in &policies {
        let mut clean_bips = f64::NAN;
        for (label, spec) in FAULT_CLASSES {
            let options = match spec {
                None => RunOptions::guarded(),
                Some(s) => RunOptions::faulted(FaultPlan::parse(s)?),
            };
            let sim = TraceCmpSim::new(traces.clone(), ctx.params().clone())?;
            let mut policy = make();
            let run = GlobalManager::new().run_with(sim, policy.as_mut(), &schedule, &options)?;
            if spec.is_none() {
                clean_bips = run.average_chip_bips().value();
            }
            points.push(point(name, label, &run, clean_bips));
        }
    }
    Ok(Fig6Faulted { points })
}

impl Fig6Faulted {
    /// The rows for one policy, in fault-class order.
    #[must_use]
    pub fn policy_rows(&self, policy: &str) -> Vec<&FaultedPoint> {
        self.points.iter().filter(|p| p.policy == policy).collect()
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "policy",
            "fault",
            "rel BIPS",
            "viol rate",
            "worst over [W]",
            "longest run",
            "events",
            "guards",
        ]);
        for p in &self.points {
            table.row([
                p.policy.clone(),
                p.fault.clone(),
                pct(p.relative_bips),
                pct(p.violation_rate),
                format!("{:.2}", p.worst_overshoot_w),
                p.longest_violation_run.to_string(),
                p.fault_events.to_string(),
                p.guard_actions.to_string(),
            ]);
        }
        format!(
            "Figure 6 (faulted): policies under injected faults at {} budget, guards on\n{}",
            pct(BUDGET),
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_runs_and_degrades_gracefully() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        assert_eq!(fig.points.len(), 3 * FAULT_CLASSES.len());

        for policy in ["MaxBIPS", "Priority", "pullHiPushLo"] {
            let rows = fig.policy_rows(policy);
            assert_eq!(rows.len(), FAULT_CLASSES.len());
            let clean = rows[0];
            assert_eq!(clean.fault, "none");
            assert!((clean.relative_bips - 1.0).abs() < 1e-12);
            assert_eq!(clean.fault_events, 0, "clean run must record no faults");
            for row in &rows[1..] {
                assert!(row.fault_events > 0, "{policy}/{} saw no faults", row.fault);
                // Degraded operation, not collapse: the guarded manager keeps
                // at least half the clean throughput under every fault class.
                assert!(
                    row.relative_bips > 0.5,
                    "{policy}/{} collapsed: {}",
                    row.fault,
                    row.relative_bips
                );
            }
        }
        let text = fig.render();
        assert!(text.contains("pullHiPushLo"));
        assert!(text.contains("dropout"));
    }
}
