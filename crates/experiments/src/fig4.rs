//! Figure 4 — policy curves, budget curves and weighted slowdowns for the
//! three per-core policies and chip-wide DVFS on (ammp, mcf, crafty, art).

use gpm_types::Result;
use gpm_workloads::combos;

use crate::render::{pct, pct2};
use crate::{suite_curves, ExperimentContext, PolicyKind, SuiteCurves};

/// The four policies Figure 4 compares.
pub const POLICIES: [PolicyKind; 4] = [
    PolicyKind::PullHiPushLo,
    PolicyKind::Priority,
    PolicyKind::MaxBips,
    PolicyKind::ChipWide,
];

/// Figure 4's data: one curve per policy over the budget sweep.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The swept curves.
    pub curves: SuiteCurves,
}

/// Runs the Figure 4 experiment.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig4> {
    Ok(Fig4 {
        curves: suite_curves(ctx, &combos::ammp_mcf_crafty_art(), &POLICIES, false)?,
    })
}

impl Fig4 {
    /// Paper-style text rendering: panels (a) policy curves, (b) budget
    /// curves, (c) weighted slowdowns.
    #[must_use]
    pub fn render(&self) -> String {
        let budgets: Vec<f64> = self
            .curves
            .dynamic
            .first()
            .map(|c| c.points.iter().map(|p| p.budget).collect())
            .unwrap_or_default();

        let mut out = format!(
            "Figure 4: policy and budget curves for ({})\n",
            self.curves.combo.replace('|', ", ")
        );

        for (title, field) in [
            ("(a) performance degradation", 0usize),
            ("(b) power / budget", 1),
            ("(c) weighted slowdown", 2),
        ] {
            out.push_str(&format!("\n{title}\n"));
            let mut header = vec!["policy".to_owned()];
            header.extend(budgets.iter().map(|b| format!("{:>7}", pct(*b))));
            let mut lines = vec![header.join("  ")];
            for curve in &self.curves.dynamic {
                let mut cells = vec![format!("{:<13}", curve.policy)];
                for p in &curve.points {
                    let v = match field {
                        0 => pct2(p.perf_degradation),
                        1 => pct(p.budget_utilization),
                        _ => pct2(p.weighted_slowdown),
                    };
                    cells.push(format!("{v:>7}"));
                }
                lines.push(cells.join("  "));
            }
            out.push_str(&lines.join("\n"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_policy_ordering() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        let maxbips = fig.curves.curve("MaxBIPS").unwrap();
        let chipwide = fig.curves.curve("ChipWideDVFS").unwrap();
        let priority = fig.curves.curve("Priority").unwrap();
        let pullhi = fig.curves.curve("pullHipushLo").unwrap();

        // (a) MaxBIPS achieves the least degradation at every budget, with
        // a small per-point tolerance: its predictive matrices can misjudge
        // a sharp phase flip in the truncated fast regions (the full-length
        // sweep in EXPERIMENTS.md has it leading everywhere).
        for (i, p) in maxbips.points.iter().enumerate() {
            for other in [chipwide, priority, pullhi] {
                assert!(
                    p.perf_degradation <= other.points[i].perf_degradation + 0.012,
                    "budget {}: MaxBIPS {} vs {} {}",
                    p.budget,
                    p.perf_degradation,
                    other.policy,
                    other.points[i].perf_degradation
                );
            }
        }
        // And it leads on the sweep mean.
        let mean = |c: &gpm_core::PolicyCurve| c.mean_degradation();
        for other in [chipwide, priority, pullhi] {
            assert!(
                mean(maxbips) <= mean(other) + 0.002,
                "MaxBIPS mean {} vs {} mean {}",
                mean(maxbips),
                other.policy,
                mean(other)
            );
        }

        // Chip-wide degrades much worse than MaxBIPS somewhere in the sweep.
        let worst_gap = chipwide
            .points
            .iter()
            .zip(&maxbips.points)
            .map(|(c, m)| c.perf_degradation - m.perf_degradation)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            worst_gap > 0.01,
            "chip-wide should pay ≥1% extra somewhere, gap {worst_gap}"
        );

        // (b) Every policy meets the budget on average; per-core policies
        // track it tighter than chip-wide at the worst point.
        for curve in &fig.curves.dynamic {
            for p in &curve.points {
                assert!(
                    p.budget_utilization < 1.03,
                    "{} at {}: utilization {}",
                    curve.policy,
                    p.budget,
                    p.budget_utilization
                );
            }
        }
        let min_util = |c: &gpm_core::PolicyCurve| {
            c.points
                .iter()
                .map(|p| p.budget_utilization)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(
            min_util(chipwide) < min_util(maxbips) + 0.02,
            "chip-wide has the large slacks"
        );

        // (c) weighted slowdowns keep MaxBIPS at/near the front.
        let mean_ws = |c: &gpm_core::PolicyCurve| {
            c.points.iter().map(|p| p.weighted_slowdown).sum::<f64>() / c.points.len() as f64
        };
        assert!(mean_ws(maxbips) <= mean_ws(chipwide) + 0.002);

        let text = fig.render();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("MaxBIPS"));
    }
}
