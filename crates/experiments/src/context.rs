//! Shared experiment context: trace store, sweep helpers, policy registry.

use std::sync::{Arc, OnceLock};

use gpm_cmp::SimParams;
use gpm_core::{
    evaluate_policy_point, static_oracle, turbo_baseline, CachedMaxBips, ChipWide, CurvePoint,
    GreedyMaxBips, HierMaxBips, MaxBips, Oracle, Policy, PolicyCurve, Priority, PullHiPushLo,
    DEFAULT_BUDGETS,
};
use gpm_trace::{BenchmarkTraces, CaptureConfig, TraceStore};
use gpm_types::{Result, Watts};
use gpm_workloads::WorkloadCombo;

/// Shared state for experiment runs: the (memoising) trace store and the
/// simulation parameters.
#[derive(Debug)]
pub struct ExperimentContext {
    store: Arc<TraceStore>,
    params: SimParams,
    budgets: Vec<f64>,
}

impl ExperimentContext {
    /// Full-fidelity context: complete benchmark regions, captures cached
    /// on disk under `target/gpm-trace-cache` (override with the
    /// `GPM_TRACE_CACHE` environment variable). This is what the bench
    /// harness uses; the first run pays the capture cost once.
    #[must_use]
    pub fn full() -> Self {
        let dir = std::env::var("GPM_TRACE_CACHE")
            .unwrap_or_else(|_| "target/gpm-trace-cache".to_owned());
        Self {
            store: Arc::new(TraceStore::with_disk_cache(CaptureConfig::default(), dir)),
            params: SimParams::default(),
            budgets: DEFAULT_BUDGETS.to_vec(),
        }
    }

    /// Reduced-fidelity context for tests and examples: every region is
    /// truncated to ~6 ms of Turbo wall time (a dozen explore intervals),
    /// with fewer budget points. The underlying store is shared
    /// process-wide (and disk-cached), so repeated calls do not recapture.
    #[must_use]
    pub fn fast() -> Self {
        static FAST_STORE: OnceLock<Arc<TraceStore>> = OnceLock::new();
        let store = FAST_STORE.get_or_init(|| {
            let dir = std::env::var("GPM_TRACE_CACHE_FAST")
                .unwrap_or_else(|_| "target/gpm-trace-cache-fast".to_owned());
            Arc::new(TraceStore::with_disk_cache(
                CaptureConfig::fast_duration(gpm_types::Micros::from_millis(6.0)),
                dir,
            ))
        });
        Self {
            store: Arc::clone(store),
            params: SimParams::default(),
            budgets: vec![0.65, 0.75, 0.85, 0.95],
        }
    }

    /// Custom context.
    #[must_use]
    pub fn new(store: TraceStore, params: SimParams, budgets: Vec<f64>) -> Self {
        Self {
            store: Arc::new(store),
            params,
            budgets,
        }
    }

    /// The trace store.
    #[must_use]
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The simulation parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The budget sweep (fractions of maximum chip power).
    #[must_use]
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// Per-core traces for a combo (captured or loaded on first use).
    ///
    /// # Errors
    ///
    /// Propagates capture errors.
    pub fn traces(&self, combo: &WorkloadCombo) -> Result<Vec<Arc<BenchmarkTraces>>> {
        self.store.combo(combo)
    }

    /// The worker-pool width experiment runs launched from this context
    /// will use. The pool is process-wide (see [`gpm_par::max_threads`]);
    /// this accessor just surfaces it where experiments are configured.
    #[must_use]
    pub fn threads(&self) -> usize {
        gpm_par::max_threads()
    }
}

/// The dynamic policies experiments can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants mirror the policy type names
pub enum PolicyKind {
    MaxBips,
    Priority,
    PullHiPushLo,
    ChipWide,
    Oracle,
    GreedyMaxBips,
    HierMaxBips,
    CachedMaxBips,
}

impl PolicyKind {
    /// Builds a fresh policy instance.
    #[must_use]
    pub fn make(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::MaxBips => Box::new(MaxBips::new()),
            PolicyKind::Priority => Box::new(Priority::new()),
            PolicyKind::PullHiPushLo => Box::new(PullHiPushLo::new()),
            PolicyKind::ChipWide => Box::new(ChipWide::new()),
            PolicyKind::Oracle => Box::new(Oracle::new()),
            PolicyKind::GreedyMaxBips => Box::new(GreedyMaxBips::new()),
            PolicyKind::HierMaxBips => Box::new(HierMaxBips::new()),
            PolicyKind::CachedMaxBips => Box::new(CachedMaxBips::new()),
        }
    }

    /// The policy's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::MaxBips => "MaxBIPS",
            PolicyKind::Priority => "Priority",
            PolicyKind::PullHiPushLo => "pullHipushLo",
            PolicyKind::ChipWide => "ChipWideDVFS",
            PolicyKind::Oracle => "Oracle",
            PolicyKind::GreedyMaxBips => "GreedyMaxBIPS",
            PolicyKind::HierMaxBips => "HierMaxBIPS",
            PolicyKind::CachedMaxBips => "CachedMaxBIPS",
        }
    }
}

/// Policy curves for one workload combo, plus the optimistic-static bound.
#[derive(Debug, Clone)]
pub struct SuiteCurves {
    /// The combo's label (`a|b|c|d`).
    pub combo: String,
    /// One curve per swept dynamic policy, in request order.
    pub dynamic: Vec<PolicyCurve>,
    /// The optimistic-static curve, when requested.
    pub static_curve: Option<PolicyCurve>,
}

impl SuiteCurves {
    /// Looks a curve up by policy name ("Static" finds the static bound).
    #[must_use]
    pub fn curve(&self, name: &str) -> Option<&PolicyCurve> {
        if name == "Static" {
            return self.static_curve.as_ref();
        }
        self.dynamic.iter().find(|c| c.policy == name)
    }
}

/// Sweeps a set of dynamic policies (and optionally the static bound) over
/// the context's budgets for one combo.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn suite_curves(
    ctx: &ExperimentContext,
    combo: &WorkloadCombo,
    policies: &[PolicyKind],
    include_static: bool,
) -> Result<SuiteCurves> {
    let traces = ctx.traces(combo)?;
    let baseline = turbo_baseline(&traces, ctx.params())?;
    // The whole policy × budget grid is one flat parallel region, so a
    // short budget list still keeps every worker busy. Cells land in grid
    // order and are regrouped into per-policy curves below.
    let cells: Vec<(PolicyKind, f64)> = policies
        .iter()
        .flat_map(|&kind| ctx.budgets().iter().map(move |&b| (kind, b)))
        .collect();
    let points = gpm_par::try_parallel_map(&cells, |&(kind, budget)| {
        evaluate_policy_point(&traces, ctx.params(), budget, &baseline, &|| kind.make())
    })?;
    let per_policy = ctx.budgets().len();
    let dynamic = policies
        .iter()
        .enumerate()
        .map(|(i, &kind)| PolicyCurve {
            policy: kind.name().to_owned(),
            points: points[i * per_policy..(i + 1) * per_policy].to_vec(),
        })
        .collect();
    let static_curve = if include_static {
        Some(static_curve(ctx, combo)?)
    } else {
        None
    };
    Ok(SuiteCurves {
        combo: combo.label(),
        dynamic,
        static_curve,
    })
}

/// The optimistic-static policy curve (Section 5.7): the best fixed
/// assignment per budget, evaluated analytically against the static
/// all-Turbo baseline.
///
/// # Errors
///
/// Propagates capture errors.
pub fn static_curve(ctx: &ExperimentContext, combo: &WorkloadCombo) -> Result<PolicyCurve> {
    let traces = ctx.traces(combo)?;
    let baseline = static_oracle::all_turbo(&traces)?;
    // Budgets are fractions of the same envelope the dynamic runs use:
    // the sum of per-core peak Turbo powers.
    let envelope: Watts = traces
        .iter()
        .map(|t| t.trace(gpm_types::PowerMode::Turbo).peak_power())
        .sum();
    let points = gpm_par::try_parallel_map(ctx.budgets(), |&budget| {
        let assignment = static_oracle::best_or_floor(
            &traces,
            envelope * budget,
            static_oracle::BudgetCriterion::PeakPower,
        )?;
        Ok::<_, gpm_types::GpmError>(CurvePoint {
            budget,
            perf_degradation: assignment.degradation_vs(&baseline),
            weighted_slowdown: assignment.weighted_slowdown_vs(&baseline),
            budget_utilization: assignment.average_power.value() / (envelope.value() * budget),
            power_saving: 1.0 - assignment.average_power.value() / baseline.average_power.value(),
        })
    })?;
    Ok(PolicyCurve {
        policy: "Static".to_owned(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::combos;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::new(
            TraceStore::new(CaptureConfig::fast(400_000)),
            SimParams::default(),
            vec![0.7, 0.9],
        )
    }

    #[test]
    fn policy_kind_roundtrip() {
        for kind in [
            PolicyKind::MaxBips,
            PolicyKind::Priority,
            PolicyKind::PullHiPushLo,
            PolicyKind::ChipWide,
            PolicyKind::Oracle,
            PolicyKind::GreedyMaxBips,
            PolicyKind::HierMaxBips,
            PolicyKind::CachedMaxBips,
        ] {
            assert_eq!(kind.make().name(), kind.name());
        }
    }

    #[test]
    fn suite_curves_cover_policies_and_static() {
        let ctx = tiny_ctx();
        let curves = suite_curves(
            &ctx,
            &combos::art_mcf(),
            &[PolicyKind::MaxBips, PolicyKind::ChipWide],
            true,
        )
        .unwrap();
        assert_eq!(curves.combo, "art|mcf");
        assert_eq!(curves.dynamic.len(), 2);
        assert!(curves.curve("MaxBIPS").is_some());
        assert!(curves.curve("Static").is_some());
        assert!(curves.curve("nonsense").is_none());
        for c in &curves.dynamic {
            assert_eq!(c.points.len(), 2);
        }
    }

    #[test]
    fn static_curve_degradation_decreases_with_budget() {
        let ctx = tiny_ctx();
        let c = static_curve(&ctx, &combos::gcc_mesa()).unwrap();
        assert_eq!(c.policy, "Static");
        assert!(c.points[0].perf_degradation >= c.points[1].perf_degradation - 1e-9);
    }
}
