//! Saturating-load fleet experiment: thousands of CMP nodes replaying
//! phase-structured telemetry against one [`FleetEngine`].
//!
//! The load models a rack of heterogeneous nodes running phase-repeating
//! workloads: nodes belong to [`FAMILIES`] workload families (8-, 16- and
//! 32-way chips in rotation), each family cycles through [`PHASES`]
//! distinct prediction matrices, and nodes within a family are offset in
//! phase — so every tick presents the engine with the full
//! `FAMILIES × PHASES` key population, replicated across the fleet. After
//! a warm epoch (one full phase rotation, excluded from measurement) the
//! engine is in steady state: every within-tick group leader hits the
//! cross-tick cache and every follower is a dedup hit, which is exactly
//! the regime a long-running rack service operates in. The measured epoch
//! reports sustained decisions/sec and the combined hit rate.

use std::time::Instant;

use gpm_core::fleet_load::PhaseTables;
use gpm_core::{DegradedConfig, FleetConfig, FleetEngine, FleetStats, RackConfig};
use gpm_faults::{FleetFaultKind, FleetFaultPlan, IntervalWindow, NodeSet};
use gpm_types::{GpmError, Result, Watts};
use serde::Serialize;

pub use gpm_core::fleet_load::{FAMILIES, PHASES};

/// Result of one saturating-load run (measured epoch only).
#[derive(Debug, Clone, Serialize)]
pub struct FleetLoad {
    /// Nodes driven per tick.
    pub nodes: usize,
    /// Measured ticks (after the warm epoch).
    pub ticks: usize,
    /// Decisions emitted during the measured epoch.
    pub decisions: u64,
    /// Wall seconds the measured epoch took (ingest + decide).
    pub elapsed_seconds: f64,
    /// Sustained decisions per second.
    pub decisions_per_sec: f64,
    /// Engine accounting over the measured epoch.
    pub stats: FleetStats,
}

/// Subtracts warm-epoch accounting so the result covers only the
/// measured epoch. Running maxima (`longest_rack_violation_run`,
/// `worst_rack_overshoot_watts`) are not differences and keep their
/// whole-run values.
pub(crate) fn delta(after: FleetStats, before: FleetStats) -> FleetStats {
    FleetStats {
        decisions_total: after.decisions_total - before.decisions_total,
        cache_hits: after.cache_hits - before.cache_hits,
        dedup_hits: after.dedup_hits - before.dedup_hits,
        unique_solves: after.unique_solves - before.unique_solves,
        dropped_stale: after.dropped_stale - before.dropped_stale,
        dropped_dark: after.dropped_dark - before.dropped_dark,
        rejected_backpressure: after.rejected_backpressure - before.rejected_backpressure,
        rejected_invalid: after.rejected_invalid - before.rejected_invalid,
        fallback_decisions: after.fallback_decisions - before.fallback_decisions,
        solver_timeouts: after.solver_timeouts - before.solver_timeouts,
        flap_drops: after.flap_drops - before.flap_drops,
        skew_delayed: after.skew_delayed - before.skew_delayed,
        corrupted_reports: after.corrupted_reports - before.corrupted_reports,
        shed_clamps: after.shed_clamps - before.shed_clamps,
        rack_violation_ticks: after.rack_violation_ticks - before.rack_violation_ticks,
        watchdog_clamp_ticks: after.watchdog_clamp_ticks - before.watchdog_clamp_ticks,
        longest_rack_violation_run: after.longest_rack_violation_run,
        worst_rack_overshoot_watts: after.worst_rack_overshoot_watts,
        solver_us_spent: after.solver_us_spent - before.solver_us_spent,
        solver_us_saved: after.solver_us_saved - before.solver_us_saved,
    }
}

/// Drives `nodes` simulated CMP nodes for `ticks` measured ticks (plus a
/// [`PHASES`]-tick warm epoch) and reports sustained throughput.
///
/// # Errors
///
/// Rejects zero `nodes` or `ticks`, and propagates engine-config errors.
pub fn run(nodes: usize, ticks: usize) -> Result<FleetLoad> {
    run_inner(nodes, ticks, false)
}

/// [`run`] with the chaos layer armed but never firing: a fault plan
/// whose only clause targets a node id outside the fleet, degraded mode
/// on and a rack budget far above the fleet's draw. The engine executes
/// the full fault-tolerant tick protocol (fault session probes, freshness
/// triage, rack accounting) while every decision stays bit-identical to
/// the disarmed run — the ratio of the two sustained throughputs is the
/// fault-free overhead of the hardening.
///
/// # Errors
///
/// Rejects zero `nodes` or `ticks`, and propagates engine-config errors.
pub fn run_armed(nodes: usize, ticks: usize) -> Result<FleetLoad> {
    run_inner(nodes, ticks, true)
}

fn run_inner(nodes: usize, ticks: usize, armed: bool) -> Result<FleetLoad> {
    if nodes == 0 {
        return Err(GpmError::InvalidConfig {
            parameter: "fleet.nodes",
            reason: "the fleet needs at least one node".into(),
        });
    }
    if ticks == 0 {
        return Err(GpmError::InvalidConfig {
            parameter: "fleet.ticks",
            reason: "the run needs at least one measured tick".into(),
        });
    }
    let tables = PhaseTables::build();
    let mut config = FleetConfig {
        queue_capacity: nodes,
        ..FleetConfig::default()
    };
    if armed {
        config.faults = Some(FleetFaultPlan::none().with(
            FleetFaultKind::NodeFlap { period: 2, down: 1 },
            NodeSet::Nodes(vec![u64::MAX]),
            IntervalWindow::ALWAYS,
        ));
        config.degraded = Some(DegradedConfig::default());
        config.rack = Some(RackConfig::new(Watts::new(1.0e12)));
    }
    let mut engine = FleetEngine::new(config)?;

    let drive = |engine: &mut FleetEngine, tick: u64| -> u64 {
        for node in 0..nodes as u64 {
            let accepted = engine.submit(tables.telemetry(node, tick));
            debug_assert!(accepted, "queue sized to the fleet");
        }
        engine.run_tick(tick).len() as u64
    };

    // Warm epoch: one full phase rotation populates the cache.
    for tick in 0..PHASES as u64 {
        drive(&mut engine, tick);
    }
    let warm = engine.stats();

    let start = Instant::now();
    let mut decisions = 0u64;
    for tick in 0..ticks as u64 {
        decisions += drive(&mut engine, PHASES as u64 + tick);
    }
    let elapsed_seconds = start.elapsed().as_secs_f64();

    Ok(FleetLoad {
        nodes,
        ticks,
        decisions,
        elapsed_seconds,
        decisions_per_sec: if elapsed_seconds > 0.0 {
            decisions as f64 / elapsed_seconds
        } else {
            0.0
        },
        stats: delta(engine.stats(), warm),
    })
}

impl FleetLoad {
    /// Combined cache + dedup hit rate over the measured epoch.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Machine-readable rendering for `gpm figure fleet --json`: the run
    /// shape, the sustained rate, the combined hit rate and the full
    /// [`FleetStats`] accounting, so scripts can diff the in-process tier
    /// against `gpm loadgen` reports.
    #[must_use]
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Report {
            nodes: usize,
            ticks: usize,
            decisions: u64,
            elapsed_seconds: f64,
            decisions_per_sec: f64,
            hit_rate: f64,
            stats: FleetStats,
        }
        serde_json::to_string(&Report {
            nodes: self.nodes,
            ticks: self.ticks,
            decisions: self.decisions,
            elapsed_seconds: self.elapsed_seconds,
            decisions_per_sec: self.decisions_per_sec,
            hit_rate: self.hit_rate(),
            stats: self.stats,
        })
        .expect("FleetLoad serializes")
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let s = &self.stats;
        let pct = |n: u64| {
            if s.decisions_total == 0 {
                0.0
            } else {
                100.0 * n as f64 / s.decisions_total as f64
            }
        };
        format!(
            "Fleet decision engine: {} nodes x {} ticks \
             ({FAMILIES} families x {PHASES} phases, 8/16/32-way)\n\
             decisions       {:>12}   sustained {:.0} decisions/s\n\
             hit rate        {:>11.1}%   (cache {:.1}%, dedup {:.1}%)\n\
             unique solves   {:>12}   solver us spent {:.0}, saved {:.0}\n\
             dropped stale   {:>12}   rejected (backpressure) {}\n",
            self.nodes,
            self.ticks,
            s.decisions_total,
            self.decisions_per_sec,
            100.0 * s.hit_rate(),
            pct(s.cache_hits),
            pct(s.dedup_hits),
            s.unique_solves,
            s.solver_us_spent,
            s.solver_us_saved,
            s.dropped_stale,
            s.rejected_backpressure,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(run(0, 2).is_err());
        assert!(run(2, 0).is_err());
    }

    #[test]
    fn steady_state_is_all_hits() {
        let load = run(96, 3).expect("fleet run succeeds");
        assert_eq!(load.decisions, 96 * 3);
        assert_eq!(load.stats.decisions_total, 96 * 3);
        // The warm epoch saw every (family, phase) key, so the measured
        // epoch never solves: the issue's ≥50% bar holds with margin.
        assert_eq!(load.stats.unique_solves, 0);
        assert!((load.hit_rate() - 1.0).abs() < 1e-12);
        assert!(load.stats.solver_us_saved > 0.0);
        assert_eq!(load.stats.dropped_stale, 0);
        assert_eq!(load.stats.rejected_backpressure, 0);
        let text = load.render();
        assert!(text.contains("96 nodes x 3 ticks"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn armed_run_matches_disarmed_accounting() {
        let armed = run_armed(96, 3).expect("armed fleet run succeeds");
        // A never-firing plan leaves the steady state untouched: same
        // all-hit accounting as the disarmed run, nothing degraded.
        assert_eq!(armed.stats.decisions_total, 96 * 3);
        assert_eq!(armed.stats.unique_solves, 0);
        assert!((armed.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(armed.stats.fallback_decisions, 0);
        assert_eq!(armed.stats.flap_drops, 0);
        assert_eq!(armed.stats.shed_clamps, 0);
        assert_eq!(armed.stats.rack_violation_ticks, 0);
    }

    #[test]
    fn json_rendering_carries_the_accounting() {
        let load = run(96, 2).expect("fleet run succeeds");
        let text = load.to_json();
        assert!(text.contains("\"decisions_per_sec\""));
        assert!(text.contains("\"hit_rate\""));
        assert!(text.contains("\"cache_hits\""));
    }
}
