//! Figure 5 — achieved power saving vs performance degradation for each
//! policy across the whole budget sweep, against the 3:1 target line.

use gpm_types::Result;
use gpm_workloads::combos;

use crate::render::{pct2, TextTable};
use crate::{suite_curves, ExperimentContext, SuiteCurves};

/// One policy's scatter of `(power saving, perf degradation)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Scatter {
    /// Policy name.
    pub policy: String,
    /// `(power saving, perf degradation)` per budget point.
    pub points: Vec<(f64, f64)>,
}

impl Scatter {
    /// Fraction of points meeting the 3:1 ΔPower:ΔPerf target (points with
    /// ~zero degradation trivially meet it).
    #[must_use]
    pub fn target_hit_rate(&self) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let hits = self
            .points
            .iter()
            .filter(|(saving, deg)| *deg <= 1e-4 || saving / deg >= 3.0)
            .count();
        hits as f64 / self.points.len() as f64
    }
}

/// Figure 5's data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// One scatter per policy (pullHipushLo, Priority, MaxBIPS, chip-wide).
    pub scatters: Vec<Scatter>,
}

/// Runs the Figure 5 experiment on the Figure 4 combo.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig5> {
    let curves: SuiteCurves = suite_curves(
        ctx,
        &combos::ammp_mcf_crafty_art(),
        &crate::fig4::POLICIES,
        false,
    )?;
    Ok(Fig5 {
        scatters: curves
            .dynamic
            .iter()
            .map(|c| Scatter {
                policy: c.policy.clone(),
                points: c
                    .points
                    .iter()
                    .map(|p| (p.power_saving, p.perf_degradation))
                    .collect(),
            })
            .collect(),
    })
}

impl Fig5 {
    /// One policy's scatter.
    #[must_use]
    pub fn scatter(&self, policy: &str) -> Option<&Scatter> {
        self.scatters.iter().find(|s| s.policy == policy)
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["policy", "ΔPower", "ΔPerf", "ratio"]);
        for s in &self.scatters {
            for &(saving, deg) in &s.points {
                let ratio = if deg.abs() < 1e-4 {
                    "inf".to_owned()
                } else {
                    format!("{:.1}", saving / deg)
                };
                t.row([s.policy.clone(), pct2(saving), pct2(deg), ratio]);
            }
        }
        format!(
            "Figure 5: power saving vs performance degradation (target ratio 3:1)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_policies_meet_3_to_1() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        assert_eq!(fig.scatters.len(), 4);

        // The per-core DVFS policies achieve very good ΔPower:ΔPerf ratios,
        // matching the 3:1 target at (nearly) every budget; MaxBIPS does
        // significantly better than 3:1 on most points.
        let maxbips = fig.scatter("MaxBIPS").unwrap();
        assert!(
            maxbips.target_hit_rate() >= 0.75,
            "MaxBIPS hit rate {}",
            maxbips.target_hit_rate()
        );
        let priority = fig.scatter("Priority").unwrap();
        assert!(
            priority.target_hit_rate() >= 0.5,
            "Priority hit rate {}",
            priority.target_hit_rate()
        );
        // pullHipushLo balances *power*, so it demotes the hottest —
        // CPU-bound — core first and pays more BIPS per watt saved; with
        // our power model it sits below the 3:1 line (documented divergence
        // in EXPERIMENTS.md). It must still stay above ~1.5:1.
        let pull = fig.scatter("pullHipushLo").unwrap();
        for &(saving, deg) in &pull.points {
            if deg > 1e-4 {
                assert!(saving / deg >= 1.5, "pullHipushLo ratio {}", saving / deg);
            }
        }
        // MaxBIPS never does worse than chip-wide in ratio terms.
        let cw = fig.scatter("ChipWideDVFS").unwrap();
        assert!(maxbips.target_hit_rate() >= cw.target_hit_rate());

        let text = fig.render();
        assert!(text.contains("3:1"));
    }
}
