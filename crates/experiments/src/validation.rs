//! Validation experiments.
//!
//! * [`trace_vs_full`] — Section 3.1: the trace-based tool against the
//!   full-CMP (shared-L2) simulation. The paper reports CMP power within
//!   ~5% of (and consistently lower than) single-threaded powers, and
//!   performance lower by ~9% on average, up to ~30% for highly
//!   memory-bound combinations.
//! * [`prediction_error`] — Section 5.5: accuracy of the predictive
//!   Power/BIPS matrices (paper: 0.1–0.3% power error, 2–4% BIPS error).

use gpm_cmp::{FullCmpSim, TraceCmpSim};
use gpm_core::MaxBips;
use gpm_types::{Micros, ModeCombination, PowerMode, Result};
use gpm_workloads::{combos, WorkloadCombo};

use crate::render::{pct2, TextTable};
use crate::ExperimentContext;

/// Per-benchmark comparison between single-threaded traces and the
/// full-CMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreDelta {
    /// Benchmark name.
    pub benchmark: String,
    /// `(CMP power − single power) / single power` (expected ≤ 0, small).
    pub power_delta: f64,
    /// `(CMP BIPS − single BIPS) / single BIPS` (expected ≤ 0; down to
    /// ~−30% for memory-bound workloads).
    pub perf_delta: f64,
}

/// Results of the Section 3.1 validation for one combo.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceVsFull {
    /// Combo label.
    pub combo: String,
    /// Per-core deltas.
    pub cores: Vec<CoreDelta>,
}

impl TraceVsFull {
    /// Mean absolute power delta over the combo.
    #[must_use]
    pub fn mean_abs_power_delta(&self) -> f64 {
        self.cores.iter().map(|c| c.power_delta.abs()).sum::<f64>() / self.cores.len() as f64
    }

    /// Mean performance delta (signed; negative = CMP slower).
    #[must_use]
    pub fn mean_perf_delta(&self) -> f64 {
        self.cores.iter().map(|c| c.perf_delta).sum::<f64>() / self.cores.len() as f64
    }

    /// Largest single-core slowdown (most negative perf delta).
    #[must_use]
    pub fn worst_perf_delta(&self) -> f64 {
        self.cores
            .iter()
            .map(|c| c.perf_delta)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs the trace-vs-full-CMP comparison for `combo` over `duration` of
/// wall time, all cores at Turbo.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn trace_vs_full(
    ctx: &ExperimentContext,
    combo: &WorkloadCombo,
    duration: Micros,
) -> Result<TraceVsFull> {
    // Single-threaded references from the captured traces.
    let traces = ctx.traces(combo)?;

    // Full-CMP run with the same core/power/DVFS models and a shared L2.
    let capture = ctx.store().config();
    let mut sim = FullCmpSim::new(
        combo,
        &ModeCombination::uniform(combo.cores(), PowerMode::Turbo),
        &capture.core,
        capture.power,
        capture.dvfs,
    )?;
    let outcome = sim.run(duration);

    let cores = outcome
        .per_core
        .iter()
        .zip(&traces)
        .map(|(cmp, single)| {
            let t = single.trace(PowerMode::Turbo);
            let window = duration.min(t.duration());
            let single_power = t.average_power_until(window).value();
            let single_bips =
                t.instructions_by(window) as f64 / window.to_seconds().value() / 1.0e9;
            CoreDelta {
                benchmark: cmp.benchmark.to_string(),
                power_delta: cmp.power.value() / single_power - 1.0,
                perf_delta: cmp.bips.value() / single_bips - 1.0,
            }
        })
        .collect();

    Ok(TraceVsFull {
        combo: combo.label(),
        cores,
    })
}

/// Runs the Section 3.1 validation over a CPU-bound and a memory-bound
/// 4-way combo.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run_trace_vs_full(ctx: &ExperimentContext, duration: Micros) -> Result<Vec<TraceVsFull>> {
    Ok(vec![
        trace_vs_full(ctx, &combos::sixtrack_gap_perlbmk_wupwise(), duration)?,
        trace_vs_full(ctx, &combos::ammp_mcf_crafty_art(), duration)?,
        trace_vs_full(ctx, &combos::mcf_mcf_art_art(), duration)?,
    ])
}

/// Renders a set of [`TraceVsFull`] results.
#[must_use]
pub fn render_trace_vs_full(results: &[TraceVsFull]) -> String {
    let mut t = TextTable::new(["combo", "bench", "ΔPower", "ΔPerf"]);
    for r in results {
        for c in &r.cores {
            t.row([
                r.combo.clone(),
                c.benchmark.clone(),
                pct2(c.power_delta),
                pct2(c.perf_delta),
            ]);
        }
    }
    format!(
        "Validation (Section 3.1): full-CMP (shared L2) vs single-threaded traces\n\
         (paper: power within ~5%, consistently lower; perf ~-9% avg, to -30% memory-bound)\n{}",
        t.render()
    )
}

/// Results of the Section 5.5 prediction-error audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionError {
    /// Mean relative error of the power predictions.
    pub mean_power_error: f64,
    /// Mean relative error of the BIPS predictions.
    pub mean_bips_error: f64,
    /// Number of (interval, core) prediction samples audited.
    pub samples: usize,
}

/// Audits the predictive matrices against what actually happened, by
/// driving a MaxBIPS run and comparing each interval's prediction for the
/// chosen modes with the subsequent observation.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn prediction_error(
    ctx: &ExperimentContext,
    combo: &WorkloadCombo,
    budget: f64,
) -> Result<PredictionError> {
    use gpm_core::{Policy, PolicyContext, PowerBipsMatrices};
    use gpm_types::{CoreId, Watts};

    let traces = ctx.traces(combo)?;
    let mut sim = TraceCmpSim::new(traces, ctx.params().clone())?;
    let envelope = sim.power_envelope();
    let budget_w = Watts::new(envelope.value() * budget);
    let dvfs = sim.params().dvfs;
    let explore = sim.params().explore;
    let mut policy = MaxBips::new();

    let mut outcome = sim.advance_explore(&sim.modes().clone())?;
    let (mut power_err, mut bips_err, mut samples) = (0.0f64, 0.0f64, 0usize);

    while !sim.finished() {
        let matrices = PowerBipsMatrices::predict(&outcome.observed);
        let modes = {
            let ctx2 = PolicyContext {
                current_modes: sim.modes(),
                matrices: &matrices,
                future: None,
                budget: budget_w,
                dvfs: &dvfs,
                explore,
            };
            policy.decide(&ctx2)
        };
        // Per-core predictions for the chosen modes (BIPS de-rated by the
        // chip-wide transition factor, as the controller computes them).
        let stall_factor = matrices
            .chip_bips_with_transition(sim.modes(), &modes, &dvfs, explore)
            .value()
            / matrices.chip_bips(&modes).value().max(f64::MIN_POSITIVE);
        let predictions: Vec<(f64, f64)> = (0..sim.cores())
            .map(|i| {
                let id = CoreId::new(i);
                let mode = modes.mode(id);
                (
                    matrices.power(id, mode).value(),
                    matrices.bips(id, mode).value() * stall_factor,
                )
            })
            .collect();

        outcome = sim.advance_explore(&modes)?;
        if outcome.duration < explore {
            break; // partial terminal interval: skip the comparison
        }
        for (obs, &(pred_p, pred_b)) in outcome.observed.iter().zip(&predictions) {
            if obs.power.value() > 0.0 && obs.bips.value() > 0.0 {
                power_err += ((pred_p - obs.power.value()) / obs.power.value()).abs();
                bips_err += ((pred_b - obs.bips.value()) / obs.bips.value()).abs();
                samples += 1;
            }
        }
    }

    Ok(PredictionError {
        mean_power_error: power_err / samples.max(1) as f64,
        mean_bips_error: bips_err / samples.max(1) as f64,
        samples,
    })
}

impl PredictionError {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "Prediction-error audit (Section 5.5; paper: power 0.1-0.3%, BIPS 2-4%)\n\
             mean power error: {}   mean BIPS error: {}   ({} samples)\n",
            pct2(self.mean_power_error),
            pct2(self.mean_bips_error),
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cmp_is_slower_not_hotter() {
        let ctx = ExperimentContext::fast();
        let results = run_trace_vs_full(&ctx, Micros::from_millis(1.0)).unwrap();
        assert_eq!(results.len(), 3);

        let cpu = &results[0]; // sixtrack|gap|perlbmk|wupwise
        let mem = &results[2]; // mcf|mcf|art|art

        // Power tracks the single-threaded captures closely everywhere.
        for r in &results {
            assert!(
                r.mean_abs_power_delta() < 0.08,
                "{}: power delta {}",
                r.combo,
                r.mean_abs_power_delta()
            );
        }
        // Memory-bound combos lose clearly more performance to the shared
        // L2 than CPU-bound ones.
        assert!(
            mem.mean_perf_delta() < cpu.mean_perf_delta(),
            "mem {} vs cpu {}",
            mem.mean_perf_delta(),
            cpu.mean_perf_delta()
        );
        assert!(
            mem.worst_perf_delta() < -0.05,
            "memory-bound worst delta {}",
            mem.worst_perf_delta()
        );
        // CPU-bound combos barely notice.
        assert!(
            cpu.mean_perf_delta() > -0.10,
            "cpu combo should be mildly affected: {}",
            cpu.mean_perf_delta()
        );

        let text = render_trace_vs_full(&results);
        assert!(text.contains("ΔPerf"));
    }

    #[test]
    fn matrix_predictions_are_accurate() {
        let ctx = ExperimentContext::fast();
        let err = prediction_error(&ctx, &combos::ammp_mcf_crafty_art(), 0.8).unwrap();
        assert!(
            err.samples >= 12,
            "need enough samples, got {}",
            err.samples
        );
        // Power predictions are very tight (cubic scaling is exact up to
        // activity drift); BIPS sees phase-change noise.
        assert!(
            err.mean_power_error < 0.02,
            "power error {}",
            err.mean_power_error
        );
        assert!(
            err.mean_bips_error < 0.10,
            "BIPS error {}",
            err.mean_bips_error
        );
        assert!(
            err.mean_power_error < err.mean_bips_error,
            "power is the better-predicted quantity"
        );
        assert!(err.render().contains("samples"));
    }
}
