//! Figure 7 — MaxBIPS against its bounds: the oracle (Section 5.6) above,
//! optimistic static assignment (Section 5.7) and chip-wide DVFS below.

use gpm_types::Result;
use gpm_workloads::combos;

use crate::render::pct2;
use crate::{suite_curves, ExperimentContext, PolicyKind, SuiteCurves};

/// Figure 7's data: ChipWideDVFS, Static, MaxBIPS and Oracle curves on
/// (ammp, mcf, crafty, art).
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The swept curves (static bound included).
    pub curves: SuiteCurves,
}

/// Runs the Figure 7 experiment.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig7> {
    Ok(Fig7 {
        curves: suite_curves(
            ctx,
            &combos::ammp_mcf_crafty_art(),
            &[
                PolicyKind::ChipWide,
                PolicyKind::MaxBips,
                PolicyKind::Oracle,
            ],
            true,
        )?,
    })
}

impl Fig7 {
    /// Mean gap between MaxBIPS and the oracle over the budget sweep — the
    /// paper's headline "within 1%" claim.
    #[must_use]
    pub fn maxbips_oracle_gap(&self) -> f64 {
        let maxbips = self.curves.curve("MaxBIPS").expect("swept");
        let oracle = self.curves.curve("Oracle").expect("swept");
        let diffs: Vec<f64> = maxbips
            .points
            .iter()
            .zip(&oracle.points)
            .map(|(m, o)| m.perf_degradation - o.perf_degradation)
            .collect();
        diffs.iter().sum::<f64>() / diffs.len() as f64
    }

    /// Paper-style text rendering: policy curves and weighted slowdowns.
    #[must_use]
    pub fn render(&self) -> String {
        let order = ["ChipWideDVFS", "Static", "MaxBIPS", "Oracle"];
        let budgets: Vec<f64> = self
            .curves
            .dynamic
            .first()
            .map(|c| c.points.iter().map(|p| p.budget).collect())
            .unwrap_or_default();
        let mut out = format!(
            "Figure 7: MaxBIPS vs oracle and optimistic-static bounds on ({})\n\
             MaxBIPS-oracle mean gap: {}\n",
            self.curves.combo.replace('|', ", "),
            pct2(self.maxbips_oracle_gap()),
        );
        for (title, pick) in [
            ("(a) performance degradation", 0usize),
            ("(b) weighted slowdown", 1),
        ] {
            out.push_str(&format!("\n{title}\n"));
            let mut header = vec![format!("{:<13}", "policy")];
            header.extend(budgets.iter().map(|b| format!("{:>7.0}%", b * 100.0)));
            out.push_str(&header.join("  "));
            out.push('\n');
            for name in order {
                let Some(curve) = self.curves.curve(name) else {
                    continue;
                };
                let mut cells = vec![format!("{:<13}", curve.policy)];
                for p in &curve.points {
                    let v = if pick == 0 {
                        p.perf_degradation
                    } else {
                        p.weighted_slowdown
                    };
                    cells.push(format!("{:>8}", pct2(v)));
                }
                out.push_str(&cells.join("  "));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_bracket_maxbips() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        let maxbips = fig.curves.curve("MaxBIPS").unwrap();
        let oracle = fig.curves.curve("Oracle").unwrap();
        let chipwide = fig.curves.curve("ChipWideDVFS").unwrap();
        let static_c = fig.curves.curve("Static").unwrap();

        for (((m, o), c), s) in maxbips
            .points
            .iter()
            .zip(&oracle.points)
            .zip(&chipwide.points)
            .zip(&static_c.points)
        {
            // Oracle is the lower envelope (small tolerance: the oracle's
            // per-interval greedy is not globally optimal).
            assert!(
                o.perf_degradation <= m.perf_degradation + 0.004,
                "budget {}: oracle {} vs MaxBIPS {}",
                m.budget,
                o.perf_degradation,
                m.perf_degradation
            );
            // Chip-wide never beats MaxBIPS.
            assert!(c.perf_degradation >= m.perf_degradation - 0.004);
            // Static (its own analytic baseline) stays a bound from above
            // at tight budgets — compare loosely.
            assert!(s.perf_degradation >= -0.01);
        }

        // Headline: MaxBIPS within 1% of the oracle on average.
        let gap = fig.maxbips_oracle_gap();
        assert!(
            (-0.002..=0.01).contains(&gap),
            "MaxBIPS-oracle mean gap {gap}"
        );

        let text = fig.render();
        assert!(text.contains("Oracle"));
        assert!(text.contains("Static"));
    }
}
