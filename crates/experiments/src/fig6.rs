//! Figure 6 — MaxBIPS execution timeline of (ammp, mcf, crafty, art) where
//! the power budget drops from 90% to 70% mid-run (a cooling failure or
//! ambient change).

use gpm_cmp::TraceCmpSim;
use gpm_core::{BudgetSchedule, GlobalManager, MaxBips, RunResult};
use gpm_types::{Micros, PowerMode, Result};
use gpm_workloads::combos;

use crate::render::pct;
use crate::ExperimentContext;

/// Figure 6's data.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-core power contributions per delta step, as fractions of the
    /// power envelope (stacking to the chip total).
    pub per_core_power_fraction: Vec<Vec<f64>>,
    /// Per-core BIPS contributions per delta step, as fractions of the
    /// all-Turbo average chip BIPS.
    pub per_core_bips_fraction: Vec<Vec<f64>>,
    /// Benchmark names per core.
    pub benchmarks: Vec<String>,
    /// Time at which the budget drops.
    pub drop_at: Micros,
    /// The managed run.
    pub run: RunResult,
    /// The all-Turbo baseline run (for normalisation).
    pub baseline: RunResult,
}

/// Where the budget drops, as a fraction of the expected run length (the
/// paper's Figure 6 drops at ~7 ms of a ~12.5 ms window).
pub const DROP_FRACTION: f64 = 0.55;
/// Budget before the drop.
pub const BUDGET_BEFORE: f64 = 0.90;
/// Budget after the drop.
pub const BUDGET_AFTER: f64 = 0.70;

/// Runs the Figure 6 experiment.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig6> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let baseline = gpm_core::turbo_baseline(&traces, ctx.params())?;

    // Drop the budget a little past the middle of the expected run (first
    // benchmark's native Turbo completion).
    let expected_end = traces
        .iter()
        .map(|t| {
            t.completion_time(PowerMode::Turbo)
                .unwrap_or_else(|| t.trace(PowerMode::Turbo).duration())
        })
        .fold(Micros::new(f64::INFINITY), Micros::min);
    let drop_at = Micros::new((expected_end.value() * DROP_FRACTION / 500.0).floor() * 500.0);

    let sim = TraceCmpSim::new(traces, ctx.params().clone())?;
    let envelope = sim.power_envelope().value();
    let schedule =
        BudgetSchedule::steps(vec![(Micros::ZERO, BUDGET_BEFORE), (drop_at, BUDGET_AFTER)]);
    let run = GlobalManager::new().run(sim, &mut MaxBips::new(), &schedule)?;

    let turbo_bips = baseline.average_chip_bips().value();
    let per_core_power_fraction = run
        .history
        .per_core_power
        .iter()
        .map(|s| s.values().iter().map(|p| p / envelope).collect())
        .collect();
    let per_core_bips_fraction = run
        .history
        .per_core_bips
        .iter()
        .map(|s| s.values().iter().map(|b| b / turbo_bips).collect())
        .collect();

    Ok(Fig6 {
        per_core_power_fraction,
        per_core_bips_fraction,
        benchmarks: run.benchmarks.clone(),
        drop_at,
        run,
        baseline,
    })
}

impl Fig6 {
    /// Total chip power fraction per delta step.
    #[must_use]
    pub fn chip_power_fraction(&self) -> Vec<f64> {
        let steps = self.per_core_power_fraction.first().map_or(0, Vec::len);
        (0..steps)
            .map(|k| self.per_core_power_fraction.iter().map(|c| c[k]).sum())
            .collect()
    }

    /// Total chip BIPS fraction per delta step (can exceed 100%: a lower
    /// power mode's instantaneous chip BIPS can exceed the *average*
    /// all-Turbo BIPS, as the paper notes).
    #[must_use]
    pub fn chip_bips_fraction(&self) -> Vec<f64> {
        let steps = self.per_core_bips_fraction.first().map_or(0, Vec::len);
        (0..steps)
            .map(|k| self.per_core_bips_fraction.iter().map(|c| c[k]).sum())
            .collect()
    }

    /// Mean chip power fraction over a window of delta steps.
    fn mean_over(&self, values: &[f64], from_us: f64, to_us: f64) -> f64 {
        let dt = 50.0;
        let lo = (from_us / dt) as usize;
        let hi = ((to_us / dt) as usize).min(values.len());
        if lo >= hi {
            return 0.0;
        }
        values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    }

    /// Average chip power fraction before the budget drop (excluding the
    /// manager's 500 µs warm-up interval).
    #[must_use]
    pub fn average_power_before(&self) -> f64 {
        self.mean_over(&self.chip_power_fraction(), 500.0, self.drop_at.value())
    }

    /// Average chip power fraction after the budget drop.
    #[must_use]
    pub fn average_power_after(&self) -> f64 {
        self.mean_over(&self.chip_power_fraction(), self.drop_at.value(), f64::MAX)
    }

    /// Average chip BIPS fraction before / after the drop.
    #[must_use]
    pub fn average_bips_around_drop(&self) -> (f64, f64) {
        let bips = self.chip_bips_fraction();
        (
            self.mean_over(&bips, 0.0, self.drop_at.value()),
            self.mean_over(&bips, self.drop_at.value(), f64::MAX),
        )
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let (bips_before, bips_after) = self.average_bips_around_drop();
        let mut out = format!(
            "Figure 6: MaxBIPS under a budget drop {} -> {} at {:.1} ms\n\
             avg chip power: {} before, {} after\n\
             avg chip BIPS (vs all-Turbo): {} before, {} after\n",
            pct(BUDGET_BEFORE),
            pct(BUDGET_AFTER),
            self.drop_at.value() / 1000.0,
            pct(self.average_power_before()),
            pct(self.average_power_after()),
            pct(bips_before),
            pct(bips_after),
        );
        // Stacked contributions, downsampled.
        let chip = self.chip_power_fraction();
        let step = (chip.len() / 16).max(1);
        out.push_str("\nper-core power contributions (% of max chip power):\n");
        out.push_str(&format!("{:<10}", "t[ms]"));
        for k in (0..chip.len()).step_by(step) {
            out.push_str(&format!("{:>6.1}", k as f64 * 0.05));
        }
        out.push('\n');
        for (i, name) in self.benchmarks.iter().enumerate() {
            out.push_str(&format!("{name:<10}"));
            for k in (0..chip.len()).step_by(step) {
                out.push_str(&format!(
                    "{:>6.0}",
                    self.per_core_power_fraction[i][k] * 100.0
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<10}", "TOTAL"));
        for k in (0..chip.len()).step_by(step) {
            out.push_str(&format!("{:>6.0}", chip[k] * 100.0));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_drop_is_tracked() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        assert_eq!(fig.benchmarks, vec!["ammp", "mcf", "crafty", "art"]);

        let before = fig.average_power_before();
        let after = fig.average_power_after();
        // Power steps down with the budget and respects both levels.
        assert!(before <= BUDGET_BEFORE + 0.03, "before {before}");
        assert!(after <= BUDGET_AFTER + 0.03, "after {after}");
        assert!(
            before - after > 0.08,
            "the drop must be visible: {before} -> {after}"
        );

        // Performance degrades only mildly in both regions (paper: ~1% and
        // ~5%; the before/after ordering itself is phase-dependent on the
        // truncated fast regions).
        let (bips_before, bips_after) = fig.average_bips_around_drop();
        assert!(bips_before > 0.88, "before-drop BIPS {bips_before}");
        assert!(bips_after > 0.80, "after-drop BIPS {bips_after}");

        let text = fig.render();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("90.0%"));
    }
}
