//! Figures 8, 9, 10 (2/4/8-way CMP policy curves) and Figure 11 (policy
//! trends under CMP scaling).

use gpm_types::Result;
use gpm_workloads::{combos, SpecBenchmark, WorkloadCombo};

use crate::render::pct2;
use crate::{suite_curves, ExperimentContext, PolicyKind, SuiteCurves};

/// The policies compared in the scaling figures.
pub const POLICIES: [PolicyKind; 3] = [
    PolicyKind::ChipWide,
    PolicyKind::MaxBips,
    PolicyKind::Oracle,
];

/// One scaling figure: a set of combo panels at a fixed core count.
#[derive(Debug, Clone)]
pub struct ScalingFigure {
    /// "Figure 8" / "Figure 9" / "Figure 10".
    pub title: String,
    /// One panel per combo, each with ChipWide/MaxBIPS/Oracle + Static.
    pub panels: Vec<SuiteCurves>,
}

fn figure(
    ctx: &ExperimentContext,
    title: &str,
    suite: Vec<WorkloadCombo>,
) -> Result<ScalingFigure> {
    // Combos fan out across the pool; the per-combo sweeps inside
    // `suite_curves` then run inline on their worker (nested regions are
    // serialised), and the store's single-flight cache dedups any
    // benchmark shared between concurrently-captured combos.
    let panels =
        gpm_par::try_parallel_map(&suite, |combo| suite_curves(ctx, combo, &POLICIES, true))?;
    Ok(ScalingFigure {
        title: title.to_owned(),
        panels,
    })
}

/// Figure 8: the four 2-way combinations of Table 2.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig8(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 8 (2-way CMP)", combos::two_way_suite())
}

/// Figure 9: the four 4-way combinations of Table 2.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig9(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 9 (4-way CMP)", combos::four_way_suite())
}

/// Figure 10: the two 8-way combinations.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig10(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 10 (8-way CMP)", combos::eight_way_suite())
}

impl ScalingFigure {
    /// Mean degradation gap of `policy` over the oracle, averaged over all
    /// panels and budgets.
    #[must_use]
    pub fn mean_gap_over_oracle(&self, policy: &str) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for panel in &self.panels {
            let Some(curve) = panel.curve(policy) else {
                continue;
            };
            let Some(oracle) = panel.curve("Oracle") else {
                continue;
            };
            for (p, o) in curve.points.iter().zip(&oracle.points) {
                sum += p.perf_degradation - o.perf_degradation;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Paper-style text rendering: one block per panel.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}: performance degradation vs power budget\n", self.title);
        for panel in &self.panels {
            out.push_str(&format!("\n({})\n", panel.combo.replace('|', ", ")));
            let budgets: Vec<f64> = panel
                .dynamic
                .first()
                .map(|c| c.points.iter().map(|p| p.budget).collect())
                .unwrap_or_default();
            let mut header = vec![format!("{:<13}", "policy")];
            header.extend(budgets.iter().map(|b| format!("{:>7.0}%", b * 100.0)));
            out.push_str(&header.join("  "));
            out.push('\n');
            for name in ["ChipWideDVFS", "Static", "MaxBIPS", "Oracle"] {
                let Some(curve) = panel.curve(name) else {
                    continue;
                };
                let mut cells = vec![format!("{:<13}", curve.policy)];
                for p in &curve.points {
                    cells.push(format!("{:>8}", pct2(p.perf_degradation)));
                }
                out.push_str(&cells.join("  "));
                out.push('\n');
            }
        }
        out
    }
}

/// One row of Figure 11: mean degradation over the oracle at one CMP scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Core count (1, 2, 4 or 8).
    pub cores: usize,
    /// MaxBIPS's mean gap over the oracle.
    pub maxbips: f64,
    /// Optimistic static's mean gap over the oracle.
    pub static_gap: f64,
    /// Chip-wide DVFS's mean gap over the oracle.
    pub chipwide: f64,
}

/// Figure 11's data.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// One row per CMP scale, smallest first.
    pub rows: Vec<Fig11Row>,
}

/// The single-benchmark "combos" used for the 1-core reference point: the
/// distinct benchmarks of the 2-way suite.
#[must_use]
pub fn single_core_workloads() -> Vec<WorkloadCombo> {
    let benches = [
        SpecBenchmark::Ammp,
        SpecBenchmark::Art,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mesa,
        SpecBenchmark::Crafty,
        SpecBenchmark::Facerec,
        SpecBenchmark::Mcf,
    ];
    benches
        .into_iter()
        .map(|b| WorkloadCombo::new(vec![b]).expect("non-empty"))
        .collect()
}

/// Runs the Figure 11 experiment across 1, 2, 4 and 8 cores.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig11(ctx: &ExperimentContext) -> Result<Fig11> {
    let scales: Vec<(usize, Vec<WorkloadCombo>)> = vec![
        (1, single_core_workloads()),
        (2, combos::two_way_suite()),
        (4, combos::four_way_suite()),
        (8, combos::eight_way_suite()),
    ];
    let mut rows = Vec::with_capacity(scales.len());
    for (cores, suite) in scales {
        let fig = figure(ctx, "", suite)?;
        rows.push(Fig11Row {
            cores,
            maxbips: fig.mean_gap_over_oracle("MaxBIPS"),
            static_gap: fig.mean_gap_over_oracle("Static"),
            chipwide: fig.mean_gap_over_oracle("ChipWideDVFS"),
        });
    }
    Ok(Fig11 { rows })
}

impl Fig11 {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 11: mean perf degradation over oracle vs CMP scale\n");
        out.push_str(&format!(
            "{:<8}{:>10}{:>10}{:>14}\n",
            "cores", "MaxBIPS", "Static", "ChipWideDVFS"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8}{:>10}{:>10}{:>14}\n",
                r.cores,
                pct2(r.maxbips),
                pct2(r.static_gap),
                pct2(r.chipwide)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_maxbips_tracks_oracle() {
        let ctx = ExperimentContext::fast();
        let fig = fig8(&ctx).unwrap();
        assert_eq!(fig.panels.len(), 4);
        let gap = fig.mean_gap_over_oracle("MaxBIPS");
        assert!(
            (-0.003..=0.015).contains(&gap),
            "2-way MaxBIPS-oracle gap {gap}"
        );
        assert!(fig.mean_gap_over_oracle("ChipWideDVFS") >= gap - 0.002);
        assert!(fig.render().contains("2-way"));
    }

    #[test]
    fn scaling_trends_match_figure11() {
        let ctx = ExperimentContext::fast();
        // 2- and 4-way scales are enough to check the trends cheaply.
        let two = figure(&ctx, "", combos::two_way_suite()).unwrap();
        let four = figure(&ctx, "", combos::four_way_suite()).unwrap();

        let mb2 = two.mean_gap_over_oracle("MaxBIPS");
        let mb4 = four.mean_gap_over_oracle("MaxBIPS");
        let cw2 = two.mean_gap_over_oracle("ChipWideDVFS");
        let cw4 = four.mean_gap_over_oracle("ChipWideDVFS");

        // MaxBIPS approaches the oracle as cores increase; chip-wide gets
        // relatively worse (both with small tolerances for noise).
        assert!(
            mb4 <= mb2 + 0.004,
            "MaxBIPS gap should shrink: {mb2} -> {mb4}"
        );
        assert!(
            cw4 >= cw2 - 0.004,
            "chip-wide gap should grow: {cw2} -> {cw4}"
        );
        // And at each scale the ordering MaxBIPS < chip-wide holds.
        assert!(mb2 <= cw2 + 0.002);
        assert!(mb4 <= cw4 + 0.002);
    }
}
