//! Figures 8, 9, 10 (2/4/8-way CMP policy curves), Figure 11 (policy
//! trends under CMP scaling), the beyond-the-paper wide-CMP tier
//! (16/32-way MaxBIPS-exact vs GreedyMaxBIPS), and the hierarchical tier
//! (64/128/256-way HierMaxBIPS vs flat-exact-where-tractable vs greedy).

use gpm_types::{GpmError, Result};
use gpm_workloads::{combos, SpecBenchmark, WorkloadCombo};

use crate::render::pct2;
use crate::{suite_curves, ExperimentContext, PolicyKind, SuiteCurves};

/// The policies compared in the scaling figures.
pub const POLICIES: [PolicyKind; 3] = [
    PolicyKind::ChipWide,
    PolicyKind::MaxBips,
    PolicyKind::Oracle,
];

/// One scaling figure: a set of combo panels at a fixed core count.
#[derive(Debug, Clone)]
pub struct ScalingFigure {
    /// "Figure 8" / "Figure 9" / "Figure 10".
    pub title: String,
    /// One panel per combo, each with ChipWide/MaxBIPS/Oracle + Static.
    pub panels: Vec<SuiteCurves>,
}

fn figure(
    ctx: &ExperimentContext,
    title: &str,
    suite: Vec<WorkloadCombo>,
) -> Result<ScalingFigure> {
    // Combos fan out across the pool; the per-combo sweeps inside
    // `suite_curves` then run inline on their worker (nested regions are
    // serialised), and the store's single-flight cache dedups any
    // benchmark shared between concurrently-captured combos.
    let panels =
        gpm_par::try_parallel_map(&suite, |combo| suite_curves(ctx, combo, &POLICIES, true))?;
    Ok(ScalingFigure {
        title: title.to_owned(),
        panels,
    })
}

/// Figure 8: the four 2-way combinations of Table 2.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig8(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 8 (2-way CMP)", combos::two_way_suite())
}

/// Figure 9: the four 4-way combinations of Table 2.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig9(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 9 (4-way CMP)", combos::four_way_suite())
}

/// Figure 10: the two 8-way combinations.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig10(ctx: &ExperimentContext) -> Result<ScalingFigure> {
    figure(ctx, "Figure 10 (8-way CMP)", combos::eight_way_suite())
}

impl ScalingFigure {
    /// Mean degradation gap of `policy` over the oracle, averaged over all
    /// panels and budgets.
    #[must_use]
    pub fn mean_gap_over_oracle(&self, policy: &str) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for panel in &self.panels {
            let Some(curve) = panel.curve(policy) else {
                continue;
            };
            let Some(oracle) = panel.curve("Oracle") else {
                continue;
            };
            for (p, o) in curve.points.iter().zip(&oracle.points) {
                sum += p.perf_degradation - o.perf_degradation;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Paper-style text rendering: one block per panel.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}: performance degradation vs power budget\n", self.title);
        for panel in &self.panels {
            out.push_str(&format!("\n({})\n", panel.combo.replace('|', ", ")));
            let budgets: Vec<f64> = panel
                .dynamic
                .first()
                .map(|c| c.points.iter().map(|p| p.budget).collect())
                .unwrap_or_default();
            let mut header = vec![format!("{:<13}", "policy")];
            header.extend(budgets.iter().map(|b| format!("{:>7.0}%", b * 100.0)));
            out.push_str(&header.join("  "));
            out.push('\n');
            for name in ["ChipWideDVFS", "Static", "MaxBIPS", "Oracle"] {
                let Some(curve) = panel.curve(name) else {
                    continue;
                };
                let mut cells = vec![format!("{:<13}", curve.policy)];
                for p in &curve.points {
                    cells.push(format!("{:>8}", pct2(p.perf_degradation)));
                }
                out.push_str(&cells.join("  "));
                out.push('\n');
            }
        }
        out
    }
}

/// One row of Figure 11: mean degradation over the oracle at one CMP scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Core count (1, 2, 4 or 8).
    pub cores: usize,
    /// MaxBIPS's mean gap over the oracle.
    pub maxbips: f64,
    /// Optimistic static's mean gap over the oracle.
    pub static_gap: f64,
    /// Chip-wide DVFS's mean gap over the oracle.
    pub chipwide: f64,
}

/// Figure 11's data.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// One row per CMP scale, smallest first.
    pub rows: Vec<Fig11Row>,
}

/// The single-benchmark "combos" used for the 1-core reference point: the
/// distinct benchmarks of the 2-way suite.
#[must_use]
pub fn single_core_workloads() -> Vec<WorkloadCombo> {
    let benches = [
        SpecBenchmark::Ammp,
        SpecBenchmark::Art,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mesa,
        SpecBenchmark::Crafty,
        SpecBenchmark::Facerec,
        SpecBenchmark::Mcf,
    ];
    benches
        .into_iter()
        .map(|b| WorkloadCombo::new(vec![b]).expect("non-empty"))
        .collect()
}

/// Runs the Figure 11 experiment across 1, 2, 4 and 8 cores.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn fig11(ctx: &ExperimentContext) -> Result<Fig11> {
    let scales: Vec<(usize, Vec<WorkloadCombo>)> = vec![
        (1, single_core_workloads()),
        (2, combos::two_way_suite()),
        (4, combos::four_way_suite()),
        (8, combos::eight_way_suite()),
    ];
    let mut rows = Vec::with_capacity(scales.len());
    for (cores, suite) in scales {
        let fig = figure(ctx, "", suite)?;
        rows.push(Fig11Row {
            cores,
            maxbips: fig.mean_gap_over_oracle("MaxBIPS"),
            static_gap: fig.mean_gap_over_oracle("Static"),
            chipwide: fig.mean_gap_over_oracle("ChipWideDVFS"),
        });
    }
    Ok(Fig11 { rows })
}

impl Fig11 {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 11: mean perf degradation over oracle vs CMP scale\n");
        out.push_str(&format!(
            "{:<8}{:>10}{:>10}{:>14}\n",
            "cores", "MaxBIPS", "Static", "ChipWideDVFS"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8}{:>10}{:>10}{:>14}\n",
                r.cores,
                pct2(r.maxbips),
                pct2(r.static_gap),
                pct2(r.chipwide)
            ));
        }
        out
    }
}

/// One budget point of the wide-CMP comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideRow {
    /// Budget as a fraction of the all-Turbo envelope.
    pub budget: f64,
    /// Performance degradation under the exact MaxBIPS argmax.
    pub exact: f64,
    /// Performance degradation under the O(N·modes) greedy heuristic.
    pub greedy: f64,
}

impl WideRow {
    /// How much throughput the greedy heuristic gives up against the exact
    /// argmax (positive = greedy is worse).
    #[must_use]
    pub fn greedy_gap(&self) -> f64 {
        self.greedy - self.exact
    }
}

/// One wide-CMP panel: exact-vs-greedy curves at one core count.
#[derive(Debug, Clone)]
pub struct WidePanel {
    /// Core count (16 or 32).
    pub cores: usize,
    /// The combo's `a|b|…` label.
    pub combo: String,
    /// One row per budget, lowest budget first.
    pub rows: Vec<WideRow>,
}

/// The wide-CMP scaling experiment: MaxBIPS solved *exactly* by the
/// branch-and-bound (`gpm_core::solver`) against the `GreedyMaxBips`
/// heuristic at core counts where the literal 3^N scan is intractable.
#[derive(Debug, Clone)]
pub struct WideScaling {
    /// One panel per requested core count, narrowest first.
    pub panels: Vec<WidePanel>,
}

/// Builds the wide combo for a supported core count.
///
/// # Errors
///
/// Returns [`GpmError::InvalidConfig`] for counts other than 16, 32, 64,
/// 128 and 256.
pub fn wide_combo(cores: usize) -> Result<WorkloadCombo> {
    match cores {
        16 => Ok(combos::sixteen_way_mixed()),
        32 => Ok(combos::thirty_two_way_mixed()),
        64 => Ok(combos::sixty_four_way_mixed()),
        128 => Ok(combos::one_twenty_eight_way_mixed()),
        256 => Ok(combos::two_fifty_six_way_mixed()),
        _ => Err(GpmError::InvalidConfig {
            parameter: "cores",
            reason: format!("wide-CMP tier supports 16, 32, 64, 128 or 256 cores, got {cores}"),
        }),
    }
}

/// Widest chip the flat exact branch-and-bound is run on in the
/// hierarchical tier. The solver itself supports up to 80 cores; beyond
/// 64 only the hierarchical and greedy controllers are compared.
pub const FLAT_EXACT_LIMIT: usize = 64;

/// Runs the wide-CMP tier at the given core counts (16 and/or 32).
///
/// The optimistic-static bound is deliberately skipped: it is a *trace*
/// search over all 3^N fixed assignments (not a matrix problem), so the
/// branch-and-bound does not apply to it and it remains intractable at
/// these widths.
///
/// # Errors
///
/// Propagates capture and simulation errors; rejects unsupported core
/// counts.
pub fn wide(ctx: &ExperimentContext, core_counts: &[usize]) -> Result<WideScaling> {
    let mut panels = Vec::with_capacity(core_counts.len());
    for &cores in core_counts {
        let combo = wide_combo(cores)?;
        let curves = suite_curves(
            ctx,
            &combo,
            &[PolicyKind::MaxBips, PolicyKind::GreedyMaxBips],
            false,
        )?;
        let exact = curves
            .curve("MaxBIPS")
            .expect("MaxBIPS curve was requested");
        let greedy = curves
            .curve("GreedyMaxBIPS")
            .expect("GreedyMaxBIPS curve was requested");
        let rows = exact
            .points
            .iter()
            .zip(&greedy.points)
            .map(|(e, g)| WideRow {
                budget: e.budget,
                exact: e.perf_degradation,
                greedy: g.perf_degradation,
            })
            .collect();
        panels.push(WidePanel {
            cores,
            combo: curves.combo,
            rows,
        });
    }
    Ok(WideScaling { panels })
}

impl WideScaling {
    /// Mean throughput the greedy heuristic gives up against the exact
    /// argmax, across all panels and budgets.
    #[must_use]
    pub fn mean_greedy_gap(&self) -> f64 {
        let rows: Vec<f64> = self
            .panels
            .iter()
            .flat_map(|p| p.rows.iter().map(WideRow::greedy_gap))
            .collect();
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().sum::<f64>() / rows.len() as f64
        }
    }

    /// Paper-style text rendering: one block per core count.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out =
            String::from("Wide-CMP tier: MaxBIPS-exact vs GreedyMaxBIPS perf degradation\n");
        for panel in &self.panels {
            out.push_str(&format!("\n{}-way ({})\n", panel.cores, panel.combo));
            out.push_str(&format!(
                "{:<10}{:>14}{:>16}{:>12}\n",
                "budget", "MaxBIPS-exact", "GreedyMaxBIPS", "greedy gap"
            ));
            for row in &panel.rows {
                out.push_str(&format!(
                    "{:<10}{:>14}{:>16}{:>12}\n",
                    format!("{:.0}%", row.budget * 100.0),
                    pct2(row.exact),
                    pct2(row.greedy),
                    pct2(row.greedy_gap()),
                ));
            }
        }
        out
    }
}

/// One budget point of the hierarchical-tier comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierRow {
    /// Budget as a fraction of the all-Turbo envelope.
    pub budget: f64,
    /// Performance degradation under the flat exact MaxBIPS argmax, when
    /// tractable ([`FLAT_EXACT_LIMIT`]); `None` at 128/256 cores.
    pub exact: Option<f64>,
    /// Performance degradation under the two-level HierMaxBIPS controller.
    pub hier: f64,
    /// Performance degradation under the O(N·modes) greedy heuristic.
    pub greedy: f64,
}

impl HierRow {
    /// How much throughput the hierarchical controller gives up against
    /// the flat exact argmax (positive = hierarchical is worse); `None`
    /// where flat-exact was not run.
    #[must_use]
    pub fn hier_gap(&self) -> Option<f64> {
        self.exact.map(|e| self.hier - e)
    }
}

/// One hierarchical-tier panel: flat-exact (where tractable) vs
/// hierarchical vs greedy at one core count.
#[derive(Debug, Clone)]
pub struct HierPanel {
    /// Core count (64, 128 or 256).
    pub cores: usize,
    /// The combo's `a|b|…` label.
    pub combo: String,
    /// One row per budget, lowest budget first.
    pub rows: Vec<HierRow>,
}

/// The hierarchical scaling experiment: the two-level HierMaxBIPS
/// controller against the flat exact argmax (up to [`FLAT_EXACT_LIMIT`]
/// cores, where the branch-and-bound is still tractable) and the greedy
/// heuristic, at cluster-CMP core counts.
#[derive(Debug, Clone)]
pub struct HierScaling {
    /// One panel per requested core count, narrowest first.
    pub panels: Vec<HierPanel>,
}

/// Runs the hierarchical tier at the given core counts (any of 16–256).
///
/// # Errors
///
/// Propagates capture and simulation errors; rejects unsupported core
/// counts.
pub fn hier(ctx: &ExperimentContext, core_counts: &[usize]) -> Result<HierScaling> {
    let mut panels = Vec::with_capacity(core_counts.len());
    for &cores in core_counts {
        let combo = wide_combo(cores)?;
        let mut policies = vec![PolicyKind::HierMaxBips, PolicyKind::GreedyMaxBips];
        if cores <= FLAT_EXACT_LIMIT {
            policies.insert(0, PolicyKind::MaxBips);
        }
        let curves = suite_curves(ctx, &combo, &policies, false)?;
        let hier = curves
            .curve("HierMaxBIPS")
            .expect("HierMaxBIPS curve was requested");
        let greedy = curves
            .curve("GreedyMaxBIPS")
            .expect("GreedyMaxBIPS curve was requested");
        let exact = curves.curve("MaxBIPS");
        let rows = hier
            .points
            .iter()
            .zip(&greedy.points)
            .enumerate()
            .map(|(i, (h, g))| HierRow {
                budget: h.budget,
                exact: exact.map(|e| e.points[i].perf_degradation),
                hier: h.perf_degradation,
                greedy: g.perf_degradation,
            })
            .collect();
        panels.push(HierPanel {
            cores,
            combo: curves.combo,
            rows,
        });
    }
    Ok(HierScaling { panels })
}

impl HierScaling {
    /// Mean throughput the hierarchical controller gives up against the
    /// flat exact argmax, across all panels and budgets where flat-exact
    /// was run.
    #[must_use]
    pub fn mean_hier_gap(&self) -> f64 {
        let gaps: Vec<f64> = self
            .panels
            .iter()
            .flat_map(|p| p.rows.iter().filter_map(HierRow::hier_gap))
            .collect();
        if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        }
    }

    /// Paper-style text rendering: one block per core count.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Hierarchical tier: flat-exact vs HierMaxBIPS vs GreedyMaxBIPS perf degradation\n",
        );
        for panel in &self.panels {
            out.push_str(&format!("\n{}-way\n", panel.cores));
            out.push_str(&format!(
                "{:<10}{:>14}{:>14}{:>16}\n",
                "budget", "MaxBIPS-exact", "HierMaxBIPS", "GreedyMaxBIPS"
            ));
            for row in &panel.rows {
                out.push_str(&format!(
                    "{:<10}{:>14}{:>14}{:>16}\n",
                    format!("{:.0}%", row.budget * 100.0),
                    row.exact.map_or_else(|| "—".to_owned(), pct2),
                    pct2(row.hier),
                    pct2(row.greedy),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_maxbips_tracks_oracle() {
        let ctx = ExperimentContext::fast();
        let fig = fig8(&ctx).unwrap();
        assert_eq!(fig.panels.len(), 4);
        let gap = fig.mean_gap_over_oracle("MaxBIPS");
        assert!(
            (-0.003..=0.015).contains(&gap),
            "2-way MaxBIPS-oracle gap {gap}"
        );
        assert!(fig.mean_gap_over_oracle("ChipWideDVFS") >= gap - 0.002);
        assert!(fig.render().contains("2-way"));
    }

    #[test]
    fn scaling_trends_match_figure11() {
        let ctx = ExperimentContext::fast();
        // 2- and 4-way scales are enough to check the trends cheaply.
        let two = figure(&ctx, "", combos::two_way_suite()).unwrap();
        let four = figure(&ctx, "", combos::four_way_suite()).unwrap();

        let mb2 = two.mean_gap_over_oracle("MaxBIPS");
        let mb4 = four.mean_gap_over_oracle("MaxBIPS");
        let cw2 = two.mean_gap_over_oracle("ChipWideDVFS");
        let cw4 = four.mean_gap_over_oracle("ChipWideDVFS");

        // MaxBIPS approaches the oracle as cores increase; chip-wide gets
        // relatively worse (both with small tolerances for noise).
        assert!(
            mb4 <= mb2 + 0.004,
            "MaxBIPS gap should shrink: {mb2} -> {mb4}"
        );
        assert!(
            cw4 >= cw2 - 0.004,
            "chip-wide gap should grow: {cw2} -> {cw4}"
        );
        // And at each scale the ordering MaxBIPS < chip-wide holds.
        assert!(mb2 <= cw2 + 0.002);
        assert!(mb4 <= cw4 + 0.002);
    }

    #[test]
    fn wide_16way_exact_beats_or_matches_greedy() {
        let ctx = ExperimentContext::fast();
        let result = wide(&ctx, &[16]).unwrap();
        assert_eq!(result.panels.len(), 1);
        let panel = &result.panels[0];
        assert_eq!(panel.cores, 16);
        assert_eq!(panel.rows.len(), ctx.budgets().len());
        // The exact argmax can only be at least as good as the greedy
        // heuristic at every budget (tiny tolerance for interval-boundary
        // feedback noise in the closed control loop).
        for row in &panel.rows {
            assert!(
                row.greedy_gap() >= -0.01,
                "greedy beat exact at budget {}: {} vs {}",
                row.budget,
                row.greedy,
                row.exact
            );
        }
        assert!(result.render().contains("16-way"));
    }

    #[test]
    fn wide_combo_rejects_unsupported_counts() {
        assert!(wide_combo(16).is_ok());
        assert!(wide_combo(32).is_ok());
        for cores in [64, 128, 256] {
            assert_eq!(
                wide_combo(cores).expect("hier tier count").cores(),
                cores,
                "{cores}-way combo"
            );
        }
        assert!(wide_combo(8).is_err());
        assert!(wide_combo(48).is_err());
    }

    #[test]
    fn hier_16way_tracks_flat_exact() {
        let ctx = ExperimentContext::fast();
        let result = hier(&ctx, &[16]).unwrap();
        assert_eq!(result.panels.len(), 1);
        let panel = &result.panels[0];
        assert_eq!(panel.cores, 16);
        assert_eq!(panel.rows.len(), ctx.budgets().len());
        for row in &panel.rows {
            let gap = row.hier_gap().expect("flat-exact runs at 16 cores");
            // The partitioned controller may give up a little throughput
            // against the flat argmax, but must stay close — and must not
            // somehow beat it by more than feedback noise.
            assert!(
                (-0.01..=0.05).contains(&gap),
                "hier gap {gap} at budget {}",
                row.budget
            );
        }
        assert!(result.render().contains("16-way"));
        assert!(result.mean_hier_gap().abs() <= 0.05);
    }
}
