//! Figure 3 — chip power timelines under chip-wide DVFS vs MaxBIPS at a
//! fixed 83% budget, for two benchmark combinations that differ by one
//! benchmark (mcf ↔ sixtrack).
//!
//! The paper's point: chip-wide DVFS fits the budget nicely for
//! (ammp, mcf, crafty, art) — all cores in Eff1 land just under 83% — but
//! swapping mcf for sixtrack pushes the uniform Eff1 point slightly over
//! budget, so *all* cores are punished down to Eff2 and a large power slack
//! goes unused. MaxBIPS fits the envelope efficiently in both cases.

use gpm_cmp::TraceCmpSim;
use gpm_core::{BudgetSchedule, GlobalManager, RunResult};
use gpm_types::{PowerMode, Result};
use gpm_workloads::{combos, WorkloadCombo};

use crate::render::pct;
use crate::{ExperimentContext, PolicyKind};

/// One policy's timeline on one combo.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Policy name.
    pub policy: String,
    /// Combo label.
    pub combo: String,
    /// Chip power per delta step, as a fraction of the power envelope.
    pub power_fraction: Vec<f64>,
    /// Budget fraction in force (0.83 throughout).
    pub budget: f64,
    /// Whole-run average power fraction.
    pub average_fraction: f64,
    /// The underlying run.
    pub run: RunResult,
}

/// The four timelines of Figure 3 (two policies × two combos).
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Panels (a) chip-wide and (b) MaxBIPS on (ammp, mcf, crafty, art);
    /// (c) chip-wide and (d) MaxBIPS on (ammp, crafty, art, sixtrack).
    pub panels: Vec<Timeline>,
    /// The budget used (see [`run`] for how it is chosen).
    pub budget: f64,
}

/// The paper's label for this experiment's budget. The effective budget is
/// re-derived from our calibration so that the paper's *phenomenon*
/// reproduces: it must sit between the two combos' all-Eff1 power levels,
/// so that chip-wide DVFS fits Eff1 on the mcf combo but collapses to Eff2
/// when sixtrack replaces mcf.
pub const NOMINAL_BUDGET: f64 = 0.83;

/// The worst 500 µs-window all-Eff1 chip power of a combo as a fraction of
/// its envelope. Chip-wide DVFS retreats to Eff2 exactly in the intervals
/// whose Eff1 power exceeds the budget, so the *peak* windowed level — not
/// the whole-run average — is what decides whether a combo can dwell in
/// Eff1 through its phase swings.
fn eff1_peak_fraction(ctx: &ExperimentContext, combo: &WorkloadCombo) -> Result<f64> {
    let traces = ctx.traces(combo)?;
    let delta = traces[0].trace(PowerMode::Eff1).delta().value();
    let window = ((500.0 / delta).round() as usize).max(1);
    let steps = traces
        .iter()
        .map(|t| t.trace(PowerMode::Eff1).samples().len())
        .min()
        .unwrap_or(0);
    let chip: Vec<f64> = (0..steps)
        .map(|k| {
            traces
                .iter()
                .map(|t| t.trace(PowerMode::Eff1).samples()[k].power_w)
                .sum()
        })
        .collect();
    let peak = chip
        .windows(window.min(chip.len()).max(1))
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .fold(f64::NEG_INFINITY, f64::max);
    let envelope: f64 = traces
        .iter()
        .map(|t| t.trace(PowerMode::Turbo).peak_power().value())
        .sum();
    Ok(peak / envelope)
}

fn timeline(
    ctx: &ExperimentContext,
    combo: &WorkloadCombo,
    kind: PolicyKind,
    budget: f64,
) -> Result<Timeline> {
    let traces = ctx.traces(combo)?;
    let sim = TraceCmpSim::new(traces, ctx.params().clone())?;
    let envelope = sim.power_envelope().value();
    let mut policy = kind.make();
    let run = GlobalManager::new().run(sim, &mut *policy, &BudgetSchedule::constant(budget))?;
    let power_fraction: Vec<f64> = run
        .history
        .chip_power
        .as_ref()
        .map(|s| s.values().iter().map(|p| p / envelope).collect())
        .unwrap_or_default();
    let average_fraction = run.average_chip_power().value() / envelope;
    Ok(Timeline {
        policy: kind.name().to_owned(),
        combo: combo.label(),
        power_fraction,
        budget,
        average_fraction,
        run,
    })
}

/// Runs the Figure 3 experiment.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig3> {
    let combo_a = combos::ammp_mcf_crafty_art();
    let combo_b = combos::ammp_crafty_art_sixtrack();
    // Split the two combos' *worst-window* all-Eff1 levels, mirroring where
    // the paper's 83% budget sat in its calibration: the mcf combo then
    // fits Eff1 through its phase swings while the sixtrack combo's power
    // spikes push chip-wide DVFS down to uniform Eff2. Fall back to the
    // nominal label if our calibration does not separate the peaks.
    let fa = eff1_peak_fraction(ctx, &combo_a)?;
    let fb = eff1_peak_fraction(ctx, &combo_b)?;
    let budget = if fb - fa > 0.005 {
        fa + 0.5 * (fb - fa)
    } else {
        NOMINAL_BUDGET
    };
    Ok(Fig3 {
        panels: vec![
            timeline(ctx, &combo_a, PolicyKind::ChipWide, budget)?,
            timeline(ctx, &combo_a, PolicyKind::MaxBips, budget)?,
            timeline(ctx, &combo_b, PolicyKind::ChipWide, budget)?,
            timeline(ctx, &combo_b, PolicyKind::MaxBips, budget)?,
        ],
        budget,
    })
}

impl Fig3 {
    /// Finds a panel by policy and combo.
    #[must_use]
    pub fn panel(&self, policy: &str, combo: &str) -> Option<&Timeline> {
        self.panels
            .iter()
            .find(|t| t.policy == policy && t.combo == combo)
    }

    /// Paper-style text rendering: a compact series per panel (time in ms,
    /// power in % of max chip power) plus averages.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3: chip-wide DVFS vs MaxBIPS at a {} budget\n\
             (budget placed between the two combos' all-Eff1 power levels,\n\
             where the paper's 83% sat in its calibration)\n",
            pct(self.budget),
        );
        for t in &self.panels {
            out.push_str(&format!(
                "\n[{} on ({})]  avg power = {} of max (budget {})\n",
                t.policy,
                t.combo.replace('|', ", "),
                pct(t.average_fraction),
                pct(t.budget)
            ));
            // Downsample to ~20 points for terminal display.
            let step = (t.power_fraction.len() / 20).max(1);
            let dt_ms = 0.05 * step as f64;
            let series: Vec<String> = t
                .power_fraction
                .iter()
                .step_by(step)
                .enumerate()
                .map(|(i, p)| format!("{:5.2}ms:{:4.0}%", i as f64 * dt_ms, p * 100.0))
                .collect();
            out.push_str(&series.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chipwide_wastes_slack_when_cpu_bound_replaces_mcf() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();
        assert_eq!(fig.panels.len(), 4);

        let cw_a = fig.panel("ChipWideDVFS", "ammp|mcf|crafty|art").unwrap();
        let cw_b = fig
            .panel("ChipWideDVFS", "ammp|crafty|art|sixtrack")
            .unwrap();
        let mb_a = fig.panel("MaxBIPS", "ammp|mcf|crafty|art").unwrap();
        let mb_b = fig.panel("MaxBIPS", "ammp|crafty|art|sixtrack").unwrap();

        // The paper's asymmetry, in its robust form: swapping mcf for
        // sixtrack forces chip-wide DVFS into all-Eff2 for a much larger
        // share of the run (our ammp/art phase swings blur the paper's
        // clean always-Eff1 vs always-Eff2 split; see EXPERIMENTS.md).
        let eff2_dwell = |t: &Timeline| {
            let eff2 = t
                .run
                .records
                .iter()
                .filter(|r| {
                    r.modes.is_uniform() && r.modes.as_slice()[0] == gpm_types::PowerMode::Eff2
                })
                .count();
            eff2 as f64 / t.run.records.len() as f64
        };
        assert!(
            eff2_dwell(cw_b) > eff2_dwell(cw_a) + 0.10,
            "chip-wide Eff2 dwell: sixtrack combo {} vs mcf combo {}",
            eff2_dwell(cw_b),
            eff2_dwell(cw_a)
        );
        // MaxBIPS never needs the uniform-Eff2 hammer and fills the budget
        // better than chip-wide on both combos.
        assert!(eff2_dwell(mb_a) < 0.05);
        assert!(eff2_dwell(mb_b) < 0.05);
        assert!(
            mb_b.average_fraction >= cw_b.average_fraction + 0.03,
            "MaxBIPS {} vs ChipWide {} on the sixtrack combo",
            mb_b.average_fraction,
            cw_b.average_fraction
        );
        assert!(mb_a.average_fraction >= cw_a.average_fraction - 0.01);

        // All four stay at/below budget on average (small tolerance for the
        // first observation interval).
        for t in &fig.panels {
            assert!(
                t.average_fraction <= fig.budget + 0.03,
                "{} on {}: {}",
                t.policy,
                t.combo,
                t.average_fraction
            );
        }

        let text = fig.render();
        assert!(text.contains("MaxBIPS"));
    }
}
