//! Small fixed-width text-table renderer for experiment output.

use std::fmt::Write as _;

/// A plain-text table with right-aligned data columns.
///
/// # Examples
///
/// ```
/// use gpm_experiments::TextTable;
///
/// let mut t = TextTable::new(["bench", "IPC"]);
/// t.row(["mcf".to_owned(), "0.30".to_owned()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<const N: usize>(header: [&str; N]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row<const N: usize>(&mut self, cells: [String; N]) {
        assert_eq!(N, self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a data row from an iterator (width-checked).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row_vec(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table: header, rule, rows. First column left-aligned,
    /// the rest right-aligned.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal ("83.0%").
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a fraction as a signed percentage with two decimals.
#[must_use]
pub fn pct2(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a".to_owned(), "1".to_owned()]);
        t.row(["long-name".to_owned(), "12345".to_owned()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row_vec(vec!["only-one".to_owned()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.83), "83.0%");
        assert_eq!(pct2(0.0123), "1.23%");
    }
}
