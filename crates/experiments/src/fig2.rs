//! Figure 2 — measured ΔPowerSavings : ΔPerformanceDegradation for DVFS,
//! per benchmark and over the whole suite.
//!
//! The paper's method (Section 4): run each benchmark natively at each mode,
//! quantify performance degradation by elapsed execution time normalised to
//! Turbo, and average over the suite. sixtrack is the upper-bound corner
//! (CPU-bound, paper: 17.3% at Eff2), mcf the lower bound (memory-bound,
//! paper: 3.7%).

use gpm_types::{PowerMode, Result};
use gpm_workloads::SpecBenchmark;

use crate::render::{pct, TextTable};
use crate::ExperimentContext;

/// Power saving and performance degradation of one benchmark at one mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTradeoff {
    /// The mode measured (Eff1 or Eff2).
    pub mode: PowerMode,
    /// Power saving relative to Turbo.
    pub power_saving: f64,
    /// Elapsed-time degradation relative to Turbo.
    pub perf_degradation: f64,
}

/// Figure 2's data: per-benchmark tradeoffs plus the suite average.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// `(benchmark name, [Eff1, Eff2] tradeoffs)`.
    pub per_benchmark: Vec<(String, [ModeTradeoff; 2])>,
    /// Suite-average tradeoffs (normalised execution times averaged over
    /// the pool, as the paper does).
    pub overall: [ModeTradeoff; 2],
}

/// Runs the Figure 2 experiment over all 12 benchmarks.
///
/// # Errors
///
/// Propagates capture errors.
pub fn run(ctx: &ExperimentContext) -> Result<Fig2> {
    let mut per_benchmark = Vec::with_capacity(SpecBenchmark::ALL.len());
    let mut sums = [[0.0f64; 2]; 2]; // [mode][saving, degradation]

    for bench in SpecBenchmark::ALL {
        let traces = ctx.store().get(bench)?;
        let turbo_time = traces
            .completion_time(PowerMode::Turbo)
            .expect("capture covers the region");
        let turbo_power = traces.trace(PowerMode::Turbo).average_power();

        let mut rows = [ModeTradeoff {
            mode: PowerMode::Eff1,
            power_saving: 0.0,
            perf_degradation: 0.0,
        }; 2];
        for (slot, mode) in [PowerMode::Eff1, PowerMode::Eff2].into_iter().enumerate() {
            let time = traces
                .completion_time(mode)
                .expect("capture covers the region");
            let power = traces.trace(mode).average_power();
            let tradeoff = ModeTradeoff {
                mode,
                power_saving: 1.0 - power / turbo_power,
                perf_degradation: 1.0 - turbo_time / time,
            };
            rows[slot] = tradeoff;
            sums[slot][0] += tradeoff.power_saving;
            sums[slot][1] += tradeoff.perf_degradation;
        }
        per_benchmark.push((bench.name().to_owned(), rows));
    }

    let n = per_benchmark.len() as f64;
    let overall = [
        ModeTradeoff {
            mode: PowerMode::Eff1,
            power_saving: sums[0][0] / n,
            perf_degradation: sums[0][1] / n,
        },
        ModeTradeoff {
            mode: PowerMode::Eff2,
            power_saving: sums[1][0] / n,
            perf_degradation: sums[1][1] / n,
        },
    ];
    Ok(Fig2 {
        per_benchmark,
        overall,
    })
}

impl Fig2 {
    /// The row for one benchmark, if present.
    #[must_use]
    pub fn benchmark(&self, name: &str) -> Option<&[ModeTradeoff; 2]> {
        self.per_benchmark
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, rows)| rows)
    }

    /// Paper-style text rendering (panels a: sixtrack, b: mcf, c: overall,
    /// plus the full per-benchmark table).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "bench",
            "Eff1 ΔPower",
            "Eff1 ΔPerf",
            "Eff2 ΔPower",
            "Eff2 ΔPerf",
        ]);
        for (name, rows) in &self.per_benchmark {
            t.row([
                name.clone(),
                pct(rows[0].power_saving),
                pct(rows[0].perf_degradation),
                pct(rows[1].power_saving),
                pct(rows[1].perf_degradation),
            ]);
        }
        t.row([
            "OVERALL".to_owned(),
            pct(self.overall[0].power_saving),
            pct(self.overall[0].perf_degradation),
            pct(self.overall[1].power_saving),
            pct(self.overall[1].perf_degradation),
        ]);
        format!(
            "Figure 2: ΔPowerSavings : ΔPerfDegradation for DVFS\n\
             (paper: sixtrack 14.2%/5.0% Eff1, 38.6%/17.3% Eff2; mcf 14.1%/1.2%, 38.3%/3.7%;\n\
             overall 14.1%/5.1%, 38.3%/12.8%)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_cases_match_paper_shape() {
        let ctx = ExperimentContext::fast();
        let fig = run(&ctx).unwrap();

        let six = fig.benchmark("sixtrack").unwrap();
        assert!(
            (0.10..=0.18).contains(&six[1].perf_degradation),
            "sixtrack Eff2 degradation {}",
            six[1].perf_degradation
        );
        let mcf = fig.benchmark("mcf").unwrap();
        assert!(
            mcf[1].perf_degradation < 0.07,
            "mcf Eff2 degradation {}",
            mcf[1].perf_degradation
        );
        // Power savings track the cubic estimate for everyone.
        for (name, rows) in &fig.per_benchmark {
            assert!(
                (rows[1].power_saving - 0.386).abs() < 0.03,
                "{name} Eff2 power saving {}",
                rows[1].power_saving
            );
            assert!(
                (rows[0].power_saving - 0.143).abs() < 0.02,
                "{name} Eff1 power saving {}",
                rows[0].power_saving
            );
        }
        // Overall: between the corners, and ratio ≥ 3:1.
        let overall2 = fig.overall[1];
        assert!(overall2.perf_degradation > mcf[1].perf_degradation);
        assert!(overall2.perf_degradation < six[1].perf_degradation + 0.01);
        assert!(
            overall2.power_saving / overall2.perf_degradation >= 2.5,
            "suite-wide ratio {}",
            overall2.power_saving / overall2.perf_degradation
        );

        let text = fig.render();
        assert!(text.contains("OVERALL"));
        assert!(text.contains("sixtrack"));
    }
}
