//! Chaos tier for the fleet decision service: seeded fault schedules
//! against a cold-started [`FleetEngine`], reporting how fast the service
//! returns to steady state after each fault class.
//!
//! Unlike the saturating-load tier (`fleet`), chaos runs start with a
//! *cold* cache: faults during the population window interact with the
//! memoization layer (a timed-out solve leaves its key unpopulated, a
//! flapped node leaves a hole in the phase rotation), which is exactly the
//! regime a restarted or degraded service operates in. For each fault
//! class present in the spec — and for the spec as a whole when it mixes
//! classes — the tier runs the same workload under only that class's
//! clauses and reports:
//!
//! * **recovery** — ticks from the last faulted tick until the first
//!   fully steady tick (no solves, no fallbacks, no drops, no clamps:
//!   every decision a cache/dedup hit);
//! * **worst rack overshoot** — the peak single-tick estimated rack-power
//!   excursion above the rack budget;
//! * **longest violation run** — the longest streak of consecutive
//!   rack-budget violation ticks.
//!
//! A built-in `budget-step` class is always appended: it injects no
//! telemetry faults but steps the rack budget down to 75% mid-run and
//! back up, exercising emergency shedding and the rack watchdog the same
//! way a cooling failure would.

use gpm_core::{DegradedConfig, FleetConfig, FleetEngine, FleetStats, RackConfig};
use gpm_faults::{FleetFaultPlan, FleetFaultSession};
use gpm_types::{GpmError, Result, Watts};

use gpm_core::fleet_load::{PhaseTables, PHASES};

/// Rack budget headroom above the fault-free steady-state draw.
const RACK_HEADROOM: f64 = 1.05;
/// Fraction the built-in `budget-step` class steps the rack budget to.
const STEP_FRACTION: f64 = 0.75;

/// Per-fault-class outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Fault-class label (`flap`, `skew`, `corrupt`, `timeout`,
    /// `combined`, `budget-step`).
    pub class: String,
    /// Ticks from the last faulted tick to the first fully steady tick;
    /// `None` when steady state was not reached inside the run (or the
    /// fault window never closes).
    pub recovery_ticks: Option<u64>,
    /// Peak single-tick estimated rack overshoot, in watts.
    pub worst_overshoot_watts: f64,
    /// Longest streak of consecutive rack-violation ticks.
    pub longest_violation_run: u64,
    /// Engine accounting over the whole run.
    pub stats: FleetStats,
}

/// Result of one chaos tier invocation: one [`ClassReport`] per fault
/// class in the spec (plus `combined` when classes mix, plus the
/// built-in `budget-step`).
#[derive(Debug, Clone)]
pub struct FleetChaos {
    /// Nodes driven per tick.
    pub nodes: usize,
    /// Ticks driven (cold start, no warm epoch).
    pub ticks: usize,
    /// The fault spec the run was invoked with.
    pub spec: String,
    /// Fault-free steady-state rack power the budgets were derived from.
    pub steady_watts: f64,
    /// Per-class outcomes.
    pub classes: Vec<ClassReport>,
}

/// Sums the estimated rack power of one tick's decisions using the same
/// matrices the nodes reported — the fault-free steady-state draw the
/// rack budget is derived from.
fn steady_rack_watts(tables: &PhaseTables, nodes: usize) -> Result<f64> {
    let mut engine = FleetEngine::new(FleetConfig {
        queue_capacity: nodes,
        ..FleetConfig::default()
    })?;
    // One full rotation populates the cache; the next tick is steady.
    let mut last = Vec::new();
    for tick in 0..=PHASES as u64 {
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, tick));
        }
        last = engine.run_tick(tick);
    }
    Ok(last
        .iter()
        .map(|d| {
            tables
                .telemetry(d.node, d.tick)
                .matrices
                .chip_power(&d.modes)
                .value()
        })
        .sum())
}

/// Whether a per-tick stats delta shows a fully steady service: every
/// decision a hit, nothing dropped, rejected, degraded or clamped.
fn tick_is_steady(delta: &FleetStats) -> bool {
    delta.unique_solves == 0
        && delta.fallback_decisions == 0
        && delta.dropped_stale == 0
        && delta.dropped_dark == 0
        && delta.rejected_invalid == 0
        && delta.solver_timeouts == 0
        && delta.shed_clamps == 0
        && delta.watchdog_clamp_ticks == 0
        && delta.rack_violation_ticks == 0
        && delta.decisions_total > 0
}

/// Drives one cold-start chaos run and measures recovery relative to
/// `last_fault_tick` (the last tick any clause can fire, `None` = the
/// schedule never ends). `budget_step` optionally carries
/// `(step_tick, restore_tick, stepped_budget)` for the built-in class.
fn run_class(
    tables: &PhaseTables,
    nodes: usize,
    ticks: usize,
    plan: Option<FleetFaultPlan>,
    last_fault_tick: Option<u64>,
    rack_budget: f64,
    budget_step: Option<(u64, u64, f64)>,
) -> Result<(Option<u64>, FleetStats)> {
    let mut engine = FleetEngine::new(FleetConfig {
        queue_capacity: nodes,
        faults: plan,
        degraded: Some(DegradedConfig::default()),
        rack: Some(RackConfig::new(Watts::new(rack_budget))),
        ..FleetConfig::default()
    })?;
    let mut prev = engine.stats();
    let mut recovery = None;
    for tick in 0..ticks as u64 {
        if let Some((step, restore, stepped)) = budget_step {
            if tick == step {
                engine.set_rack_budget(Some(Watts::new(stepped)));
            } else if tick == restore {
                engine.set_rack_budget(Some(Watts::new(rack_budget)));
            }
        }
        for node in 0..nodes as u64 {
            engine.submit(tables.telemetry(node, tick));
        }
        engine.run_tick(tick);
        let now = engine.stats();
        let delta = crate::fleet::delta(now, prev);
        prev = now;
        if recovery.is_none() {
            if let Some(last) = last_fault_tick {
                if tick > last && tick_is_steady(&delta) {
                    recovery = Some(tick - last);
                }
            }
        }
    }
    Ok((recovery, engine.stats()))
}

/// Runs the chaos tier: `nodes` simulated CMP nodes, `ticks` cold-start
/// ticks, faults from `spec` (the fleet grammar; see
/// [`FleetFaultPlan::parse`]), optionally reseeded with `seed`.
///
/// # Errors
///
/// Rejects degenerate sizes and malformed specs; propagates engine-config
/// errors.
pub fn run(nodes: usize, ticks: usize, spec: &str, seed: Option<u64>) -> Result<FleetChaos> {
    if nodes == 0 || ticks == 0 {
        return Err(GpmError::InvalidConfig {
            parameter: "fleet_chaos.size",
            reason: "the chaos tier needs at least one node and one tick".into(),
        });
    }
    let mut plan = FleetFaultPlan::parse(spec)?;
    if let Some(seed) = seed {
        plan = plan.seeded(seed);
    }

    let tables = PhaseTables::build();
    let steady_watts = steady_rack_watts(&tables, nodes)?;
    let rack_budget = steady_watts * RACK_HEADROOM;

    // Partition the spec's clauses by class, preserving clause order.
    let mut classes: Vec<(String, FleetFaultPlan)> = Vec::new();
    for clause in &plan.clauses {
        let label = clause.kind.label().to_owned();
        match classes.iter_mut().find(|(l, _)| *l == label) {
            Some((_, class_plan)) => class_plan.clauses.push(clause.clone()),
            None => classes.push((
                label,
                FleetFaultPlan {
                    clauses: vec![clause.clone()],
                    seed: plan.seed,
                },
            )),
        }
    }
    if classes.len() > 1 {
        classes.push(("combined".to_owned(), plan.clone()));
    }

    let mut reports = Vec::with_capacity(classes.len() + 1);
    for (label, class_plan) in classes {
        let last_fault = FleetFaultSession::new(&class_plan)?.last_fault_tick();
        let (recovery, stats) = run_class(
            &tables,
            nodes,
            ticks,
            Some(class_plan),
            last_fault,
            rack_budget,
            None,
        )?;
        reports.push(ClassReport {
            class: label,
            recovery_ticks: recovery,
            worst_overshoot_watts: stats.worst_rack_overshoot_watts,
            longest_violation_run: stats.longest_rack_violation_run,
            stats,
        });
    }

    // Built-in budget-step class: no telemetry faults, a mid-run rack
    // budget step down and back up.
    let step = (ticks as u64 / 3).max(1);
    let restore = (2 * ticks as u64 / 3).max(step + 1);
    let (recovery, stats) = run_class(
        &tables,
        nodes,
        ticks,
        None,
        Some(restore), // the step schedule's last perturbed tick
        rack_budget,
        Some((step, restore, steady_watts * STEP_FRACTION)),
    )?;
    reports.push(ClassReport {
        class: "budget-step".to_owned(),
        recovery_ticks: recovery,
        worst_overshoot_watts: stats.worst_rack_overshoot_watts,
        longest_violation_run: stats.longest_rack_violation_run,
        stats,
    });

    Ok(FleetChaos {
        nodes,
        ticks,
        spec: spec.to_owned(),
        steady_watts,
        classes: reports,
    })
}

impl FleetChaos {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fleet chaos: {} nodes x {} ticks (cold start), spec `{}`\n\
             rack budget {:.0} W ({:.0}% of the {:.0} W fault-free steady draw)\n\
             {:<12} {:>9} {:>15} {:>9} {:>10} {:>7} {:>8} {:>9}\n",
            self.nodes,
            self.ticks,
            self.spec,
            self.steady_watts * RACK_HEADROOM,
            RACK_HEADROOM * 100.0,
            self.steady_watts,
            "class",
            "recovery",
            "worst overshoot",
            "viol run",
            "fallbacks",
            "drops",
            "invalid",
            "timeouts",
        );
        for report in &self.classes {
            let s = &report.stats;
            let recovery = report
                .recovery_ticks
                .map_or_else(|| "never".to_owned(), |t| format!("{t}t"));
            out.push_str(&format!(
                "{:<12} {:>9} {:>13.1} W {:>9} {:>10} {:>7} {:>8} {:>9}\n",
                report.class,
                recovery,
                report.worst_overshoot_watts,
                report.longest_violation_run,
                s.fallback_decisions,
                s.dropped_stale + s.dropped_dark,
                s.rejected_invalid,
                s.solver_timeouts,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert!(run(0, 8, "flap:period=2", None).is_err());
        assert!(run(8, 0, "flap:period=2", None).is_err());
        assert!(run(8, 8, "nosuchkind", None).is_err());
    }

    #[test]
    fn windowed_faults_recover_and_budget_step_sheds() {
        let out = run(32, 12, "flap@0+1:period=2,down=1,from=2,to=5", None).unwrap();
        assert_eq!(out.classes.len(), 2, "flap + built-in budget-step");

        let flap = &out.classes[0];
        assert_eq!(flap.class, "flap");
        assert!(flap.stats.flap_drops > 0, "{:?}", flap.stats);
        assert!(flap.stats.fallback_decisions > 0);
        let recovery = flap.recovery_ticks.expect("windowed fault recovers");
        // The cache is phase-shared across nodes, so the service is
        // steady within one full rotation of the phase cycle.
        assert!(recovery <= PHASES as u64 + 1, "recovery {recovery}");
        assert_eq!(flap.worst_overshoot_watts, 0.0, "fallbacks are power-safe");

        let step = &out.classes[1];
        assert_eq!(step.class, "budget-step");
        assert!(step.stats.shed_clamps > 0, "{:?}", step.stats);
        assert!(step.worst_overshoot_watts > 0.0);
        assert!(step.longest_violation_run >= 1);
        assert!(
            step.recovery_ticks.is_some(),
            "service recovers after restore"
        );
    }

    #[test]
    fn mixed_spec_adds_a_combined_class() {
        let out = run(
            16,
            10,
            "corrupt@3:rate=1.0,from=1,to=3;timeout:rate=0.5,from=1,to=3",
            Some(11),
        )
        .unwrap();
        let labels: Vec<&str> = out.classes.iter().map(|c| c.class.as_str()).collect();
        assert_eq!(
            labels,
            vec!["corrupt", "timeout", "combined", "budget-step"]
        );
        let corrupt = &out.classes[0];
        assert!(corrupt.stats.corrupted_reports > 0);
        assert!(corrupt.stats.rejected_invalid > 0);
        let text = out.render();
        assert!(text.contains("combined"), "{text}");
        assert!(text.contains("budget-step"), "{text}");
    }

    #[test]
    fn open_ended_schedules_report_no_recovery() {
        let out = run(16, 6, "skew@0:ticks=9", None).unwrap();
        let skew = &out.classes[0];
        assert_eq!(skew.class, "skew");
        assert_eq!(skew.recovery_ticks, None, "window never closes");
        assert!(skew.stats.dropped_dark > 0, "{:?}", skew.stats);
        assert!(out.render().contains("never"));
    }
}
