//! Tables 3, 4 and 5: mode design targets, analytic DVFS estimates and
//! transition overheads.

use gpm_power::DvfsParams;
use gpm_types::{Micros, PowerMode};

use crate::render::{pct, TextTable};

/// Table 3 — target ΔPower : ΔPerformance ratios for the three modes.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// `(mode, target power saving, target performance degradation)`.
    pub rows: Vec<(PowerMode, f64, f64)>,
}

/// Reproduces Table 3 (design targets; constants from the paper).
#[must_use]
pub fn table3() -> Table3 {
    Table3 {
        rows: vec![
            (PowerMode::Turbo, 0.0, 0.0),
            (PowerMode::Eff1, 0.15, 0.05),
            (PowerMode::Eff2, 0.45, 0.15),
        ],
    }
}

impl Table3 {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Mode", "Power Savings", "Perf Degradation"]);
        for &(mode, power, perf) in &self.rows {
            t.row([mode.to_string(), pct(power), pct(perf)]);
        }
        format!(
            "Table 3: target ΔPower:ΔPerf per mode (3X:1X)\n{}",
            t.render()
        )
    }
}

/// Table 4 — estimated power savings and performance degradation bounds
/// under linear DVFS (cubic power, linear performance).
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// `(mode, estimated power saving, perf degradation upper bound)`.
    pub rows: Vec<(PowerMode, f64, f64)>,
}

/// Reproduces Table 4 from the DVFS parameters.
#[must_use]
pub fn table4(dvfs: &DvfsParams) -> Table4 {
    Table4 {
        rows: dvfs
            .estimated_tradeoffs()
            .into_iter()
            .map(|e| (e.mode, e.power_saving, e.perf_degradation_bound))
            .collect(),
    }
}

impl Table4 {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Mode", "Est. Power Saving", "Perf Degradation (bound)"]);
        for &(mode, power, perf) in &self.rows {
            t.row([mode.to_string(), pct(power), pct(perf)]);
        }
        format!(
            "Table 4: estimated DVFS power/performance (cubic power, linear perf)\n{}",
            t.render()
        )
    }
}

/// Table 5 — DVFS transition overheads at the regulator slew rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// `(from, to, ΔV in millivolts, transition time)`.
    pub rows: Vec<(PowerMode, PowerMode, f64, Micros)>,
}

/// Reproduces Table 5 from the DVFS parameters.
#[must_use]
pub fn table5(dvfs: &DvfsParams) -> Table5 {
    let pairs = [
        (PowerMode::Turbo, PowerMode::Eff1),
        (PowerMode::Eff1, PowerMode::Eff2),
        (PowerMode::Turbo, PowerMode::Eff2),
    ];
    Table5 {
        rows: pairs
            .into_iter()
            .map(|(a, b)| {
                let dv_mv = a.voltage_distance(b) * dvfs.nominal_vdd.value() * 1000.0;
                (a, b, dv_mv, dvfs.transition_time(a, b))
            })
            .collect(),
    }
}

impl Table5 {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Transition", "ΔV [mV]", "t [µs]"]);
        for &(a, b, dv, time) in &self.rows {
            t.row([
                format!("{a} <-> {b}"),
                format!("{dv:.0}"),
                format!("{:.1}", time.value()),
            ]);
        }
        format!(
            "Table 5: DVFS transition overheads (10 mV/µs slew)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_targets() {
        let t = table3();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[2], (PowerMode::Eff2, 0.45, 0.15));
        let s = t.render();
        assert!(s.contains("45.0%"));
        assert!(s.contains("Eff2"));
    }

    #[test]
    fn table4_matches_cubic_linear() {
        let t = table4(&DvfsParams::paper());
        assert!((t.rows[1].1 - 0.142_625).abs() < 1e-6);
        assert!((t.rows[2].1 - 0.385_875).abs() < 1e-6);
        assert!((t.rows[1].2 - 0.05).abs() < 1e-12);
        assert!(t.render().contains("14.3%"));
    }

    #[test]
    fn table5_matches_paper() {
        let t = table5(&DvfsParams::paper());
        assert_eq!(t.rows.len(), 3);
        assert!((t.rows[0].2 - 65.0).abs() < 1e-6);
        assert!((t.rows[1].2 - 130.0).abs() < 1e-6);
        assert!((t.rows[2].2 - 195.0).abs() < 1e-6);
        assert!((t.rows[2].3.value() - 19.5).abs() < 1e-9);
        let s = t.render();
        assert!(s.contains("19.5"));
        assert!(s.contains("65"));
    }
}
