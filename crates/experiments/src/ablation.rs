//! Ablation studies for the design choices DESIGN.md calls out: search
//! strategy (exhaustive vs greedy), sensor noise, and explore-interval
//! length.

use gpm_cmp::{SensorModel, SimParams, TraceCmpSim, TransitionBehavior};
use gpm_core::{
    sweep_policy, turbo_baseline, BudgetSchedule, GlobalManager, MaxBips, MinPower, PolicyCurve,
    RunResult, ThermalGuard,
};
use gpm_power::{ThermalModel, ThermalParams};
use gpm_types::{Micros, Result, Watts};
use gpm_workloads::{combos, WorkloadCombo};

use crate::render::{pct2, TextTable};
use crate::{ExperimentContext, PolicyKind};

/// Exhaustive-vs-greedy search comparison at one CMP scale.
#[derive(Debug, Clone)]
pub struct SearchAblation {
    /// Combo label.
    pub combo: String,
    /// Exhaustive MaxBIPS curve.
    pub exhaustive: PolicyCurve,
    /// Greedy MaxBIPS curve.
    pub greedy: PolicyCurve,
}

impl SearchAblation {
    /// Mean extra degradation the greedy search pays (≥ 0 up to noise).
    #[must_use]
    pub fn greedy_penalty(&self) -> f64 {
        let diffs: Vec<f64> = self
            .greedy
            .points
            .iter()
            .zip(&self.exhaustive.points)
            .map(|(g, e)| g.perf_degradation - e.perf_degradation)
            .collect();
        diffs.iter().sum::<f64>() / diffs.len().max(1) as f64
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["budget", "exhaustive ΔPerf", "greedy ΔPerf"]);
        for (e, g) in self.exhaustive.points.iter().zip(&self.greedy.points) {
            t.row([
                format!("{:.0}%", e.budget * 100.0),
                pct2(e.perf_degradation),
                pct2(g.perf_degradation),
            ]);
        }
        format!(
            "Ablation: exhaustive 3^N vs greedy MaxBIPS search on ({})\n\
             mean greedy penalty: {}\n{}",
            self.combo.replace('|', ", "),
            pct2(self.greedy_penalty()),
            t.render()
        )
    }
}

/// Compares exhaustive and greedy MaxBIPS on one combo.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn search(ctx: &ExperimentContext, combo: &WorkloadCombo) -> Result<SearchAblation> {
    let traces = ctx.traces(combo)?;
    let baseline = turbo_baseline(&traces, ctx.params())?;
    let exhaustive = sweep_policy(&traces, ctx.params(), ctx.budgets(), &baseline, &|| {
        PolicyKind::MaxBips.make()
    })?;
    let greedy = sweep_policy(&traces, ctx.params(), ctx.budgets(), &baseline, &|| {
        PolicyKind::GreedyMaxBips.make()
    })?;
    Ok(SearchAblation {
        combo: combo.label(),
        exhaustive,
        greedy,
    })
}

/// One sensor-noise level's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePoint {
    /// Relative standard deviation of the power-sensor noise.
    pub noise_std: f64,
    /// MaxBIPS throughput degradation vs all-Turbo.
    pub perf_degradation: f64,
    /// Fraction of explore intervals whose measured power exceeded budget.
    pub overshoot_fraction: f64,
}

/// Sensor-noise ablation results.
#[derive(Debug, Clone)]
pub struct NoiseAblation {
    /// Budget fraction used.
    pub budget: f64,
    /// One point per swept noise level.
    pub points: Vec<NoisePoint>,
}

impl NoiseAblation {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["noise σ", "ΔPerf", "overshoot intervals"]);
        for p in &self.points {
            t.row([
                format!("{:.0}%", p.noise_std * 100.0),
                pct2(p.perf_degradation),
                pct2(p.overshoot_fraction),
            ]);
        }
        format!(
            "Ablation: power-sensor noise vs MaxBIPS at a {:.0}% budget\n{}",
            self.budget * 100.0,
            t.render()
        )
    }
}

/// Sweeps power-sensor noise levels for MaxBIPS on (ammp, mcf, crafty, art).
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn sensor_noise(ctx: &ExperimentContext, budget: f64) -> Result<NoiseAblation> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let baseline = turbo_baseline(&traces, ctx.params())?;
    let mut points = Vec::new();
    for noise_std in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let params = SimParams {
            sensor: SensorModel {
                power_noise_std: noise_std,
                seed: 0x0_5e50,
            },
            ..ctx.params().clone()
        };
        let sim = TraceCmpSim::new(traces.clone(), params)?;
        let run = GlobalManager::new().run(
            sim,
            &mut MaxBips::new(),
            &BudgetSchedule::constant(budget),
        )?;
        points.push(NoisePoint {
            noise_std,
            perf_degradation: gpm_core::throughput_degradation(&run, &baseline),
            overshoot_fraction: run.overshoot_intervals() as f64 / run.records.len() as f64,
        });
    }
    Ok(NoiseAblation { budget, points })
}

/// One explore-interval length's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorePoint {
    /// Explore interval length.
    pub explore: Micros,
    /// MaxBIPS throughput degradation vs all-Turbo (same-interval baseline).
    pub perf_degradation: f64,
    /// Total transition-stall time as a fraction of the run.
    pub stall_fraction: f64,
}

/// Explore-interval ablation results.
#[derive(Debug, Clone)]
pub struct ExploreAblation {
    /// Budget fraction used.
    pub budget: f64,
    /// One point per swept interval length.
    pub points: Vec<ExplorePoint>,
}

impl ExploreAblation {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["explore [µs]", "ΔPerf", "stall overhead"]);
        for p in &self.points {
            t.row([
                format!("{:.0}", p.explore.value()),
                pct2(p.perf_degradation),
                pct2(p.stall_fraction),
            ]);
        }
        format!(
            "Ablation: explore-interval length vs MaxBIPS at a {:.0}% budget\n\
             (the paper picks 500 µs so that worst-case 19.5 µs transitions cost 1-4%;\n\
             longer intervals amortise the stall but alias program phases and flip\n\
             modes more often)\n{}",
            self.budget * 100.0,
            t.render()
        )
    }
}

/// Sweeps the explore-interval length for MaxBIPS on (ammp, mcf, crafty,
/// art).
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn explore_interval(ctx: &ExperimentContext, budget: f64) -> Result<ExploreAblation> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let mut points = Vec::new();
    for explore_us in [100.0, 250.0, 500.0, 1000.0, 2000.0] {
        let params = SimParams {
            explore: Micros::new(explore_us),
            ..ctx.params().clone()
        };
        let baseline = turbo_baseline(&traces, &params)?;
        let sim = TraceCmpSim::new(traces.clone(), params)?;
        let run = GlobalManager::new().run(
            sim,
            &mut MaxBips::new(),
            &BudgetSchedule::constant(budget),
        )?;
        points.push(ExplorePoint {
            explore: Micros::new(explore_us),
            perf_degradation: gpm_core::throughput_degradation(&run, &baseline),
            stall_fraction: run.total_stall().value() / run.duration.value(),
        });
    }
    Ok(ExploreAblation { budget, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_search_is_near_exhaustive() {
        let ctx = ExperimentContext::fast();
        let a = search(&ctx, &combos::ammp_mcf_crafty_art()).unwrap();
        let penalty = a.greedy_penalty();
        assert!(
            (-0.004..=0.01).contains(&penalty),
            "greedy penalty {penalty}"
        );
        assert!(a.render().contains("greedy"));
    }

    #[test]
    fn noise_degrades_gracefully() {
        let ctx = ExperimentContext::fast();
        let a = sensor_noise(&ctx, 0.8).unwrap();
        assert_eq!(a.points.len(), 5);
        let clean = a.points[0];
        let noisy = *a.points.last().unwrap();
        // More noise → at least as many overshoots and no better perf
        // (generous tolerances: noise is stochastic).
        assert!(noisy.overshoot_fraction >= clean.overshoot_fraction);
        assert!(noisy.perf_degradation >= clean.perf_degradation - 0.01);
        assert!(a.render().contains("noise"));
    }

    #[test]
    fn prefetcher_helps_streaming_not_chasing() {
        let a = prefetch(600_000);
        let by_name = |n: &str| a.points.iter().find(|p| p.benchmark == n).unwrap();
        // art's sequential sweep traffic benefits (modestly — its pointer
        // chases dominate); mcf is essentially immune; CPU-bound codes are
        // unaffected either way.
        let art = by_name("art");
        assert!(
            art.ipc.1 >= art.ipc.0 * 1.01,
            "art IPC should improve: {} -> {}",
            art.ipc.0,
            art.ipc.1
        );
        let mcf = by_name("mcf");
        assert!(
            (mcf.ipc.1 - mcf.ipc.0).abs() < mcf.ipc.0 * 0.15,
            "mcf should be largely prefetch-immune: {} vs {}",
            mcf.ipc.0,
            mcf.ipc.1
        );
        let six = by_name("sixtrack");
        assert!((six.ipc.1 - six.ipc.0).abs() < six.ipc.0 * 0.02);
        // Total L2 traffic is conserved (prefetch fills replace demand
        // misses), so the L2/KI column stays flat.
        assert!((art.mpki.1 - art.mpki.0).abs() < art.mpki.0 * 0.05);
        assert!(a.render().contains("prefetcher"));
    }

    #[test]
    fn overlapped_transitions_never_hurt() {
        let ctx = ExperimentContext::fast();
        let a = transition_overlap(&ctx).unwrap();
        for p in &a.points {
            assert!(
                p.overlapped <= p.stall_chip + 0.004,
                "budget {}: overlapped {} vs stall {}",
                p.budget,
                p.overlapped,
                p.stall_chip
            );
        }
        // The conservative assumption costs a measurable but small amount
        // (the paper estimates 1-4% per transition, amortised well below
        // that over a run).
        let cost = a.mean_stall_cost();
        assert!((-0.002..0.03).contains(&cost), "mean stall cost {cost}");
        assert!(a.render().contains("stall-chip"));
    }

    #[test]
    fn thermal_guard_holds_the_limit() {
        let ctx = ExperimentContext::fast();
        // Pick a limit below the hottest unguarded steady state so the
        // guard has real work to do.
        let study = thermal(&ctx, 72.0).unwrap();
        let unguarded = &study.points[0];
        let guarded = &study.points[1];
        assert!(
            unguarded.peak_temperature_c > 72.0,
            "unguarded run should exceed the limit: {}",
            unguarded.peak_temperature_c
        );
        assert!(
            guarded.peak_temperature_c < unguarded.peak_temperature_c - 0.5,
            "guard must reduce peak: {} vs {}",
            guarded.peak_temperature_c,
            unguarded.peak_temperature_c
        );
        // The guard approximately holds the limit (one explore interval of
        // overshoot is possible before it reacts).
        assert!(
            guarded.peak_temperature_c <= 72.0 + 3.0,
            "guarded peak {}",
            guarded.peak_temperature_c
        );
        // Thermal headroom costs throughput.
        assert!(guarded.perf_degradation >= unguarded.perf_degradation - 1e-9);
        assert!(study.render().contains("ThermalGuard"));
    }

    #[test]
    fn dual_problem_meets_targets() {
        let ctx = ExperimentContext::fast();
        let d = dual_problem(&ctx).unwrap();
        assert_eq!(d.points.len(), 5);
        let mut last_saving = -1.0;
        for p in &d.points {
            // The achieved degradation respects the target (small slack for
            // prediction error and transition costs).
            assert!(
                p.perf_degradation <= (1.0 - p.target) + 0.02,
                "target {}: degradation {}",
                p.target,
                p.perf_degradation
            );
            // Looser targets monotonically free more power.
            assert!(
                p.power_saving >= last_saving - 0.01,
                "target {}: saving {} after {}",
                p.target,
                p.power_saving,
                last_saving
            );
            last_saving = p.power_saving;
        }
        // The loosest target saves real power.
        assert!(d.points.last().unwrap().power_saving > 0.10);
        assert!(d.render().contains("MinPower"));
    }

    #[test]
    fn explore_interval_sweep_is_well_behaved() {
        let ctx = ExperimentContext::fast();
        let a = explore_interval(&ctx, 0.8).unwrap();
        // Two competing effects: the per-transition stall amortises over a
        // longer interval, but longer intervals alias program phases and
        // flip modes more often. The robust invariant is that overhead
        // stays small across the whole sweep (paper: 1-4% per transition,
        // far less overall).
        for p in &a.points {
            assert!(
                p.stall_fraction < 0.02,
                "explore {}: stall fraction {}",
                p.explore,
                p.stall_fraction
            );
            assert!(
                (-0.01..0.2).contains(&p.perf_degradation),
                "explore {}: degradation {}",
                p.explore,
                p.perf_degradation
            );
        }
        assert!(a.render().contains("explore"));
    }
}

/// One performance-target point of the dual-problem study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualPoint {
    /// Requested throughput floor, as a fraction of all-Turbo.
    pub target: f64,
    /// Achieved throughput degradation vs all-Turbo.
    pub perf_degradation: f64,
    /// Achieved power saving vs all-Turbo.
    pub power_saving: f64,
}

/// Results of the dual-problem (MinPower) study — the paper's
/// stated-but-unanalysed companion problem.
#[derive(Debug, Clone)]
pub struct DualStudy {
    /// Combo label.
    pub combo: String,
    /// One point per swept performance target, tightest first.
    pub points: Vec<DualPoint>,
}

impl DualStudy {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["perf target", "achieved ΔPerf", "ΔPower saved"]);
        for p in &self.points {
            t.row([
                format!("{:.0}%", p.target * 100.0),
                pct2(p.perf_degradation),
                pct2(p.power_saving),
            ]);
        }
        format!(
            "Extension: MinPower — minimise power for a given performance target\n\
             (the dual problem the paper poses but does not analyse) on ({})\n{}",
            self.combo.replace('|', ", "),
            t.render()
        )
    }
}

/// Sweeps performance targets for the [`MinPower`] policy on
/// (ammp, mcf, crafty, art), with the power budget released to 100%.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn dual_problem(ctx: &ExperimentContext) -> Result<DualStudy> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let baseline = turbo_baseline(&traces, ctx.params())?;
    let mut points = Vec::new();
    for target in [0.99, 0.97, 0.95, 0.90, 0.85] {
        let sim = TraceCmpSim::new(traces.clone(), ctx.params().clone())?;
        let run = GlobalManager::new().run(
            sim,
            &mut MinPower::new(target),
            &BudgetSchedule::constant(1.0),
        )?;
        points.push(DualPoint {
            target,
            perf_degradation: gpm_core::throughput_degradation(&run, &baseline),
            power_saving: 1.0
                - run.average_chip_power().value() / baseline.average_chip_power().value(),
        });
    }
    Ok(DualStudy {
        combo: combo.label(),
        points,
    })
}

/// Outcome of the thermal-guard study for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPoint {
    /// Policy name.
    pub policy: String,
    /// Hottest junction temperature reached over the run, °C.
    pub peak_temperature_c: f64,
    /// Throughput degradation vs all-Turbo.
    pub perf_degradation: f64,
}

/// Thermal-guard study results.
#[derive(Debug, Clone)]
pub struct ThermalStudy {
    /// Junction limit used, °C.
    pub limit_c: f64,
    /// Unguarded vs guarded outcomes.
    pub points: Vec<ThermalPoint>,
}

/// Replays a finished run's per-core power series through the RC model and
/// returns the hottest temperature reached.
fn peak_temperature(run: &RunResult, params: ThermalParams) -> f64 {
    let cores = run.history.per_core_power.len();
    let mut model = ThermalModel::new(cores, params).expect("default thermal params are valid");
    let steps = run.history.per_core_power[0].len();
    let dt = run.history.per_core_power[0].dt();
    let mut peak = f64::NEG_INFINITY;
    for k in 0..steps {
        let powers: Vec<Watts> = run
            .history
            .per_core_power
            .iter()
            .map(|s| Watts::new(s.values()[k]))
            .collect();
        model.step(&powers, dt);
        peak = peak.max(model.hottest());
    }
    peak
}

/// Compares plain MaxBIPS against `ThermalGuard<MaxBips>` on the hottest
/// combo at an unconstrained power budget: the guard must hold the junction
/// limit that the unguarded run violates.
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn thermal(ctx: &ExperimentContext, limit_c: f64) -> Result<ThermalStudy> {
    let combo = combos::sixtrack_gap_perlbmk_wupwise();
    let traces = ctx.traces(&combo)?;
    let baseline = turbo_baseline(&traces, ctx.params())?;
    let params = ThermalParams::default();
    let schedule = BudgetSchedule::constant(1.0);

    let unguarded = GlobalManager::new().run(
        TraceCmpSim::new(traces.clone(), ctx.params().clone())?,
        &mut MaxBips::new(),
        &schedule,
    )?;
    let mut guard = ThermalGuard::new(MaxBips::new(), combo.cores(), params, limit_c, 3.0)?;
    let guarded = GlobalManager::new().run(
        TraceCmpSim::new(traces, ctx.params().clone())?,
        &mut guard,
        &schedule,
    )?;

    Ok(ThermalStudy {
        limit_c,
        points: vec![
            ThermalPoint {
                policy: unguarded.policy.clone(),
                peak_temperature_c: peak_temperature(&unguarded, params),
                perf_degradation: gpm_core::throughput_degradation(&unguarded, &baseline),
            },
            ThermalPoint {
                policy: guarded.policy.clone(),
                peak_temperature_c: peak_temperature(&guarded, params),
                perf_degradation: gpm_core::throughput_degradation(&guarded, &baseline),
            },
        ],
    })
}

impl ThermalStudy {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["policy", "peak T [°C]", "ΔPerf"]);
        for p in &self.points {
            t.row([
                p.policy.clone(),
                format!("{:.1}", p.peak_temperature_c),
                pct2(p.perf_degradation),
            ]);
        }
        format!(
            "Extension: ThermalGuard — junction limit {:.0} °C on the hottest combo\n\
             (RC node per core, 1.8 K/W, 5 ms time constant, 45 °C ambient)\n{}",
            self.limit_c,
            t.render()
        )
    }
}

/// One row of the transition-behaviour ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionPoint {
    /// Budget fraction.
    pub budget: f64,
    /// Degradation under the paper's conservative stall-all assumption.
    pub stall_chip: f64,
    /// Degradation when execution continues through the slew (the
    /// optimistic implementations the paper cites).
    pub overlapped: f64,
}

/// Transition-behaviour ablation results.
#[derive(Debug, Clone)]
pub struct TransitionAblation {
    /// One point per budget.
    pub points: Vec<TransitionPoint>,
}

impl TransitionAblation {
    /// Mean cost of the conservative assumption.
    #[must_use]
    pub fn mean_stall_cost(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.stall_chip - p.overlapped)
            .sum::<f64>()
            / self.points.len() as f64
    }

    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["budget", "stall-chip ΔPerf", "overlapped ΔPerf"]);
        for p in &self.points {
            t.row([
                format!("{:.0}%", p.budget * 100.0),
                pct2(p.stall_chip),
                pct2(p.overlapped),
            ]);
        }
        format!(
            "Ablation: transition behaviour — the paper's conservative stall-all\n\
             assumption vs overlapped execution (Brock & Rajamani / Clark et al.)\n\
             mean cost of the conservative assumption: {}\n{}",
            pct2(self.mean_stall_cost()),
            t.render()
        )
    }
}

/// Runs MaxBIPS under both transition assumptions on (ammp, mcf, crafty,
/// art).
///
/// # Errors
///
/// Propagates capture and simulation errors.
pub fn transition_overlap(ctx: &ExperimentContext) -> Result<TransitionAblation> {
    let combo = combos::ammp_mcf_crafty_art();
    let traces = ctx.traces(&combo)?;
    let points = gpm_par::try_parallel_map(ctx.budgets(), |&budget| {
        let mut degradations = [0.0f64; 2];
        for (slot, behaviour) in [
            TransitionBehavior::StallChip,
            TransitionBehavior::Overlapped,
        ]
        .into_iter()
        .enumerate()
        {
            let params = SimParams {
                transition: behaviour,
                ..ctx.params().clone()
            };
            let baseline = turbo_baseline(&traces, &params)?;
            let sim = TraceCmpSim::new(traces.clone(), params)?;
            let run = GlobalManager::new().run(
                sim,
                &mut MaxBips::new(),
                &BudgetSchedule::constant(budget),
            )?;
            degradations[slot] = gpm_core::throughput_degradation(&run, &baseline);
        }
        Ok::<_, gpm_types::GpmError>(TransitionPoint {
            budget,
            stall_chip: degradations[0],
            overlapped: degradations[1],
        })
    })?;
    Ok(TransitionAblation { points })
}

/// One benchmark's prefetcher sensitivity.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// L2 MPKI without / with the 8-stream prefetcher.
    pub mpki: (f64, f64),
    /// Turbo IPC without / with the prefetcher.
    pub ipc: (f64, f64),
    /// Eff2 wall-clock slowdown without / with the prefetcher.
    pub eff2_slowdown: (f64, f64),
}

/// Prefetcher-sensitivity study results.
#[derive(Debug, Clone)]
pub struct PrefetchAblation {
    /// One row per studied benchmark.
    pub points: Vec<PrefetchPoint>,
}

impl PrefetchAblation {
    /// Paper-style text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "bench",
            "L2/KI off",
            "L2/KI on",
            "IPC off",
            "IPC on",
            "Eff2 slow off",
            "Eff2 slow on",
        ]);
        for p in &self.points {
            t.row([
                p.benchmark.clone(),
                format!("{:.2}", p.mpki.0),
                format!("{:.2}", p.mpki.1),
                format!("{:.2}", p.ipc.0),
                format!("{:.2}", p.ipc.1),
                pct2(p.eff2_slowdown.0),
                pct2(p.eff2_slowdown.1),
            ]);
        }
        format!(
            "Ablation: POWER4-style 8-stream hardware prefetcher (off in Table 1)\n\
             — how much DVFS insensitivity survives when streaming misses are hidden.\n\
             L2/KI counts total L2 traffic including prefetch fills, so it stays\n\
             flat by construction; the benefit (or its absence) shows in IPC.\n{}",
            t.render()
        )
    }
}

/// Measures prefetcher sensitivity for representative benchmarks, directly
/// on the core model (no traces involved).
#[must_use]
pub fn prefetch(measure_cycles: u64) -> PrefetchAblation {
    use gpm_microarch::{CoreConfig, CoreModel};
    use gpm_types::Hertz;
    use gpm_workloads::SpecBenchmark;

    let run = |bench: SpecBenchmark, streams: usize, ghz: f64| {
        let mut config = CoreConfig::power4();
        config.prefetch_streams = streams;
        let mut core = CoreModel::new(&config, Hertz::from_ghz(ghz))
            .expect("power4 config with adjusted prefetch streams is valid");
        let mut stream = bench.stream();
        let _ = core.run_cycles(&mut stream, measure_cycles / 5); // warm-up
        let stats = core.run_cycles(&mut stream, measure_cycles);
        let ips = stats.instructions as f64 / (stats.cycles as f64 / (ghz * 1e9));
        (stats.ipc(), stats.l2_mpki(), ips)
    };

    let points = [
        SpecBenchmark::Art,
        SpecBenchmark::Mcf,
        SpecBenchmark::Gcc,
        SpecBenchmark::Sixtrack,
    ]
    .into_iter()
    .map(|bench| {
        let (ipc_off, mpki_off, ips_off_t) = run(bench, 0, 1.0);
        let (ipc_on, mpki_on, ips_on_t) = run(bench, 8, 1.0);
        let (_, _, ips_off_e2) = run(bench, 0, 0.85);
        let (_, _, ips_on_e2) = run(bench, 8, 0.85);
        PrefetchPoint {
            benchmark: bench.name().to_owned(),
            mpki: (mpki_off, mpki_on),
            ipc: (ipc_off, ipc_on),
            eff2_slowdown: (1.0 - ips_off_e2 / ips_off_t, 1.0 - ips_on_e2 / ips_on_t),
        }
    })
    .collect();
    PrefetchAblation { points }
}
