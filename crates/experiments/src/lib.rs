//! Experiment drivers that regenerate **every table and figure** of the
//! paper's evaluation.
//!
//! Each module corresponds to one table or figure and exposes a `run`
//! function returning a structured result with a `render()` method that
//! prints the same rows/series the paper reports. The `gpm-bench` crate
//! wires each of them to a `cargo bench` target; `EXPERIMENTS.md` records
//! paper-vs-measured values.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`tables`] | Table 3 (mode targets), Table 4 (DVFS estimates), Table 5 (transition overheads) |
//! | [`fig2`] | Figure 2 — measured ΔPower/ΔPerf per mode (sixtrack, mcf, overall SPEC) |
//! | [`fig3`] | Figure 3 — chip-wide DVFS vs MaxBIPS power timelines at an 83% budget |
//! | [`fig4`] | Figure 4 — policy curves, budget curves, weighted slowdowns |
//! | [`fig5`] | Figure 5 — power-saving : performance-degradation scatter vs the 3:1 target |
//! | [`fig6`] | Figure 6 — MaxBIPS timeline under a 90%→70% budget drop |
//! | [`fig7`] | Figure 7 — oracle and optimistic-static bounds vs MaxBIPS and chip-wide |
//! | [`scaling`] | Figures 8, 9, 10 (2/4/8-way suites) and Figure 11 (trends vs core count) |
//! | [`validation`] | Section 3.1 trace-tool validation + Section 5.5 prediction-error audit |
//! | [`ablation`] | Extensions: greedy-vs-exhaustive search, sensor noise, explore-interval sweeps |
//! | [`fleet`] | Extension: saturating-load fleet decision engine (10k nodes, cache + dedup) |
//!
//! # Examples
//!
//! ```no_run
//! use gpm_experiments::{fig4, ExperimentContext};
//!
//! let ctx = ExperimentContext::fast();
//! let result = fig4::run(&ctx)?;
//! println!("{}", result.render());
//! # Ok::<(), gpm_types::GpmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
mod context;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig6_faulted;
pub mod fig7;
pub mod fleet;
pub mod fleet_chaos;
mod render;
pub mod scaling;
pub mod tables;
pub mod validation;

pub use context::{static_curve, suite_curves, ExperimentContext, PolicyKind, SuiteCurves};
pub use render::TextTable;
