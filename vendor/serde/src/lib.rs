//! Offline, API-compatible subset of `serde` for the gpm workspace.
//!
//! The container image has no crates.io access, so the workspace vendors the
//! narrow serde surface it actually uses: derived `Serialize`/`Deserialize`
//! on plain structs and enums, serialised as JSON via the sibling
//! `serde_json` facade. Both traits convert through [`json::Value`] rather
//! than the real serde's visitor machinery — call sites and derives are
//! source-compatible, the wire format matches serde_json's default
//! (externally-tagged enums, objects for named fields, arrays for tuples).

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can be converted into a [`json::Value`].
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> json::Value;
}

/// Types that can be reconstructed from a [`json::Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`json::Error`] when the value has the wrong shape.
    fn from_value(value: &json::Value) -> Result<Self, json::Error>;
}

use json::{Error, Number, Value};

fn expected(kind: &str, value: &Value) -> Error {
    Error::msg(format!("expected {kind}, found {}", value.kind()))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| expected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value
            .as_u64()
            .ok_or_else(|| expected("unsigned integer", value))?;
        usize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value.as_i64().ok_or_else(|| expected("integer", value))?;
        isize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64().ok_or_else(|| expected("number", value))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| expected("array", value))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| expected("array", value))?;
                let expected_len = [$($idx),+].len();
                if items.len() != expected_len {
                    return Err(Error::msg(format!(
                        "expected array of {expected_len}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 42u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
        let v = (-3i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -3);
        let v = 1.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
        let v = Some(vec![1u32, 2]).to_value();
        assert_eq!(
            Option::<Vec<u32>>::from_value(&v).unwrap(),
            Some(vec![1, 2])
        );
        let v = (1u64, 2.5f64).to_value();
        assert_eq!(<(u64, f64)>::from_value(&v).unwrap(), (1, 2.5));
    }

    #[test]
    fn f64_from_integer_representation() {
        // The writer prints `1.0f64` as `1`, which parses back as an
        // integer; numeric deserialisation must coerce.
        let v = json::parse("1").unwrap();
        assert_eq!(f64::from_value(&v).unwrap(), 1.0);
    }
}
