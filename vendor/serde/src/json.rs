//! A small JSON document model with a parser and writer.
//!
//! This backs the workspace's offline `serde`/`serde_json` subset: derived
//! `Serialize`/`Deserialize` impls convert through [`Value`], and the text
//! layer round-trips `f64` exactly (Rust's `{}` formatting is shortest
//! round-trip) and `u64`/`i64` exactly (integers are kept out of floats).

use std::fmt;

/// A JSON number, preserving integer-ness so `u64::MAX`-scale values
/// round-trip without precision loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Encoding/decoding error for the JSON subset.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Short name of the value's JSON type, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object, erroring when absent or not an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks `name`.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `f64`, coercing any number representation.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` (integers only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(Number::PosInt(n)) => write!(f, "{n}"),
            Value::Number(Number::NegInt(n)) => write!(f, "{n}"),
            Value::Number(Number::Float(x)) => {
                if x.is_finite() {
                    // `{}` for f64 is shortest-round-trip and never uses
                    // exponent notation, so the output is always legal JSON.
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns an error on malformed input or trailing content.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect_literal("\\u")?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar starting here.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|e| Error::msg(e.to_string()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|e| Error::msg(e.to_string()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|e| Error::msg(e.to_string()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        let number = if is_float {
            Number::Float(text.parse::<f64>().map_err(|e| Error::msg(e.to_string()))?)
        } else if let Some(body) = text.strip_prefix('-') {
            let _ = body;
            match text.parse::<i64>() {
                Ok(n) => Number::NegInt(n),
                Err(_) => {
                    Number::Float(text.parse::<f64>().map_err(|e| Error::msg(e.to_string()))?)
                }
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::PosInt(n),
                Err(_) => {
                    Number::Float(text.parse::<f64>().map_err(|e| Error::msg(e.to_string()))?)
                }
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn preserves_u64_and_f64_exactly() {
        let max = u64::MAX.to_string();
        assert_eq!(
            parse(&max).unwrap(),
            Value::Number(Number::PosInt(u64::MAX))
        );
        let x = 0.123_456_789_012_345_67_f64;
        let text = Value::Number(Number::Float(x)).to_string();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(x));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,{"b":"x\n"}],"c":null}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.field("c").unwrap(), &Value::Null);
    }
}
