//! Offline `serde_json` facade for the gpm workspace.
//!
//! Thin wrappers over the document model in [`serde::json`]. Numbers
//! round-trip exactly: `u64`/`i64` stay integers and `f64` uses Rust's
//! shortest-round-trip formatting, which is what the real crate's
//! `float_roundtrip` feature guarantees.

pub use serde::json::{Error, Number, Value};

/// Serialises `value` to a JSON string.
///
/// # Errors
///
/// Infallible for the supported types; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialises `value` to JSON bytes.
///
/// # Errors
///
/// Infallible for the supported types; the `Result` mirrors the real API.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a `T` from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(input)?)
}

/// Parses a `T` from JSON bytes.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: serde::Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::msg(e.to_string()))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_round_trip() {
        let v: Vec<u64> = super::from_str("[1,2,3]").unwrap();
        assert_eq!(super::to_string(&v).unwrap(), "[1,2,3]");
    }
}
