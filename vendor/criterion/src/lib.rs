//! Offline micro-benchmark shim for the gpm workspace.
//!
//! Exposes the `criterion 0.5` API subset used by `gpm-bench`
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`) without the real
//! crate's statistics engine: each benchmark runs a short warm-up plus a
//! fixed number of timed iterations and prints the mean per-iteration time.

use std::fmt;
use std::time::Instant;

/// Entry point holding benchmark-wide settings.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always uses a fixed count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    #[must_use]
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its return value alive.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const WARMUP: u32 = 1;
        const MEASURED: u32 = 10;
        for _ in 0..WARMUP {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURED {
            std::hint::black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.iters_done += u64::from(MEASURED);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        iters_done: 0,
        total_nanos: 0,
    };
    f(&mut bencher);
    let mean_nanos = if bencher.iters_done > 0 {
        bencher.total_nanos / u128::from(bencher.iters_done)
    } else {
        0
    };
    println!(
        "bench {label}: {mean_nanos} ns/iter ({} iters)",
        bencher.iters_done
    );
}

/// Re-export of `std::hint::black_box` for call sites that import it from
/// criterion.
pub use std::hint::black_box;

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion__ = $crate::Criterion::default();
            $( $target(&mut criterion__); )+
        }
    };
}

/// Declares `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
