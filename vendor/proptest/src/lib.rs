//! Offline property-testing shim for the gpm workspace.
//!
//! Implements the `proptest!` DSL subset the workspace's tests use —
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `arg in strategy`
//! parameters, range/tuple/`any`/`prop::collection::vec`/`prop_map`
//! strategies, and `prop_assert!`/`prop_assert_eq!` — as plain `#[test]`
//! functions that sample each strategy with a per-test deterministic RNG.
//!
//! No shrinking: a failing case panics with the sampled values visible in
//! the assertion message. Determinism (seeded from the test name) keeps
//! failures reproducible across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, so each property gets a stable
    /// but distinct sequence.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325_u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical full-range strategy, backing [`any`].
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: full-range bit patterns would mostly be
        // astronomic magnitudes and occasionally NaN/inf.
        (rng.next_f64() - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }` block
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng__ = $crate::TestRng::from_name(stringify!($name));
                for case__ in 0..config.cases {
                    let _ = case__;
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng__);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            x in 1u64..10,
            (a, b) in ((0.0f64..1.0).prop_map(|v| (v, v * 2.0))),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(b >= a);
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in prop::collection::vec(any::<u8>(), 2..=5),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
        }
    }
}
