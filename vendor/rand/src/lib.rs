//! Offline, API-compatible subset of `rand 0.8` for the gpm workspace.
//!
//! Provides exactly the surface the workspace uses: `rngs::SmallRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen::<f64>()`, `gen::<bool>()` and `gen_range` over integer
//! ranges. The generator is xoroshiro128++ seeded through SplitMix64 —
//! deterministic for a given seed, which is all the simulators require
//! (the workspace never relies on matching the real crate's streams;
//! captured traces embed whatever stream produced them).

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random number generation.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution:
    /// `f64` uniform in `[0, 1)`, `bool` fair coin, integers full-range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling, backing [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// `draw % span`, using native 64-bit arithmetic when the span fits in a
/// `u64` (the overwhelmingly common case; a 128-bit modulo lowers to a slow
/// `__umodti3` call). `(draw as u128) % span == ((draw % span_64) as u128)`
/// whenever `span <= u64::MAX`, so the fast path is exact.
#[inline]
fn mod_span(draw: u64, span: u128) -> u128 {
    if let Ok(span64) = u64::try_from(span) {
        // Tiny spans (dependency distances, stride picks) are the hot case;
        // resolving them without a runtime division is worth ~20 cycles per
        // draw. Each arm computes exactly `draw % span64`.
        let rem = match span64 {
            1 => 0,
            2 => draw & 1,
            3 => draw % 3, // strength-reduced to a multiply by the compiler
            4 => draw & 3,
            _ => draw % span64,
        };
        u128::from(rem)
    } else {
        u128::from(draw) % span
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = mod_span(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = mod_span(rng.next_u64(), span);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoroshiro128++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s0 = splitmix64(&mut state);
            let mut s1 = splitmix64(&mut state);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xoroshiro must not start at the all-zero state
            }
            Self { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        // Inlined across crates: without the hint every draw in the
        // workload generators' per-instruction hot loop becomes an outlined
        // call (the workspace builds without LTO).
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self
                .s0
                .wrapping_add(self.s1)
                .rotate_left(17)
                .wrapping_add(self.s0);
            let t = self.s1 ^ self.s0;
            self.s0 = self.s0.rotate_left(49) ^ t ^ (t << 21);
            self.s1 = t.rotate_left(28);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
        }
    }
}
