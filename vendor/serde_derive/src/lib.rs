//! Derive macros for the workspace's offline serde subset.
//!
//! Parses the deriving item's token stream directly (no `syn`/`quote`, which
//! are unavailable offline) and emits `impl ::serde::Serialize` /
//! `::serde::Deserialize` blocks that convert through `::serde::json::Value`.
//!
//! Supported shapes — exactly what the gpm workspace derives on:
//! named-field structs (including generic ones like `TimeSeries<T = f64>`),
//! tuple structs (newtypes serialise transparently, wider tuples as arrays),
//! and enums with unit, named-field, or tuple variants (externally tagged,
//! matching real serde_json's default format). `#[serde(...)]` attributes
//! are accepted and ignored; the only one used in-tree is `transparent` on
//! newtypes, which is already this derive's newtype behaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `::serde::Serialize` by conversion to `::serde::json::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = serialize_body(&input);
    render_impl("Serialize", &input, &body)
}

/// Derives `::serde::Deserialize` by conversion from `::serde::json::Value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = deserialize_body(&input);
    render_impl("Deserialize", &input, &body)
}

// --- code generation ------------------------------------------------------

fn render_impl(trait_name: &str, input: &Input, body: &str) -> TokenStream {
    let name = &input.name;
    let code = if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{ {body} }}")
    } else {
        let bounded = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        let plain = input.generics.join(", ");
        format!("impl<{bounded}> ::serde::{trait_name} for {name}<{plain}> {{ {body} }}")
    };
    code.parse().expect("generated impl should parse")
}

fn serialize_body(input: &Input) -> String {
    let expr = match &input.body {
        Body::NamedStruct(fields) => object_expr(fields, "self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Body::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::json::Value::Array(vec![{items}])")
        }
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "Self::{vname} => ::serde::json::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantFields::Named(fields) => {
                            let bindings = fields.join(", ");
                            let inner = object_expr(fields, "");
                            format!(
                                "Self::{vname} {{ {bindings} }} => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                            )
                        }
                        VariantFields::Tuple(1) => format!(
                            "Self::{vname}(field0__) => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(field0__))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let bindings = (0..*n)
                                .map(|i| format!("field{i}__"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(field{i}__)"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "Self::{vname}({bindings}) => ::serde::json::Value::Object(vec![(\"{vname}\".to_string(), ::serde::json::Value::Array(vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    format!("fn to_value(&self) -> ::serde::json::Value {{ {expr} }}")
}

fn object_expr(fields: &[String], access_prefix: &str) -> String {
    let pairs = fields
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{access_prefix}{f}))")
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("::serde::json::Value::Object(vec![{pairs}])")
}

fn deserialize_body(input: &Input) -> String {
    let name = &input.name;
    let expr = match &input.body {
        Body::NamedStruct(fields) => {
            let inits = named_field_inits(fields, "value__");
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Body::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value__)?))".to_owned()
        }
        Body::TupleStruct(n) => {
            let inits = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items__[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items__ = value__.as_array().ok_or_else(|| ::serde::json::Error::msg(\"expected array for {name}\"))?;\n\
                 if items__.len() != {n} {{ return ::std::result::Result::Err(::serde::json::Error::msg(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok(Self({inits}))"
            )
        }
        Body::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits = named_field_inits(fields, "inner__");
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok(Self::{vname} {{ {inits} }}),"
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}(::serde::Deserialize::from_value(inner__)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items__[{i}])?")
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let items__ = inner__.as_array().ok_or_else(|| ::serde::json::Error::msg(\"expected array for {name}::{vname}\"))?;\n\
                                 if items__.len() != {n} {{ return ::std::result::Result::Err(::serde::json::Error::msg(\"wrong tuple arity for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok(Self::{vname}({inits}))\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match value__ {{\n\
                 ::serde::json::Value::String(tag__) => match tag__.as_str() {{\n\
                 {unit_arms}\n\
                 other__ => ::std::result::Result::Err(::serde::json::Error::msg(format!(\"unknown variant `{{other__}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::json::Value::Object(pairs__) if pairs__.len() == 1 => {{\n\
                 let (tag__, inner__) = &pairs__[0];\n\
                 let _ = inner__;\n\
                 match tag__.as_str() {{\n\
                 {data_arms}\n\
                 other__ => ::std::result::Result::Err(::serde::json::Error::msg(format!(\"unknown variant `{{other__}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other__ => ::std::result::Result::Err(::serde::json::Error::msg(format!(\"invalid value for enum {name}: {{}}\", other__.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "fn from_value(value__: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{ {expr} }}"
    )
}

fn named_field_inits(fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value({source}.field(\"{f}\")?)?"))
        .collect::<Vec<_>>()
        .join(", ")
}

// --- token-stream parsing -------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);
    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_top_level(g.stream()))
            }
            other => panic!("serde derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde derive supports only structs and enums, found `{other}`"),
    };
    Input {
        name,
        generics,
        body,
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` after the type name, returning type-parameter names with
/// bounds and defaults stripped (`<T: Clone = f64>` yields `["T"]`).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *i += 1;
    let mut depth = 1u32;
    let mut current: Option<String> = None;
    let mut capture_done = false;
    let mut after_lifetime_tick = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if let Some(name) = current.take() {
                    params.push(name);
                }
                capture_done = false;
            }
            TokenTree::Punct(p) if (p.as_char() == ':' || p.as_char() == '=') && depth == 1 => {
                capture_done = true;
            }
            TokenTree::Punct(p) if p.as_char() == '\'' => after_lifetime_tick = true,
            TokenTree::Ident(id) => {
                if after_lifetime_tick {
                    after_lifetime_tick = false;
                } else if !capture_done && current.is_none() {
                    current = Some(id.to_string());
                }
            }
            _ => {}
        }
        *i += 1;
    }
    if let Some(name) = current.take() {
        params.push(name);
    }
    params
}

/// Counts comma-separated entries at the top level of a token stream,
/// treating `<...>` spans as nested (their commas don't separate entries).
fn count_top_level(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0u32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token {
                    count += 1;
                }
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        // Skip the `:` and the type, up to the next top-level comma.
        debug_assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        let mut angle_depth = 0u32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_top_level(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
