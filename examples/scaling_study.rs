//! A miniature Figure 11: how the MaxBIPS-vs-oracle gap and the chip-wide
//! penalty evolve from 2 to 8 cores.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    throughput_degradation, turbo_baseline, BudgetSchedule, ChipWide, GlobalManager, MaxBips,
    Oracle, Policy,
};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::Micros;
use gpm::workloads::{combos, WorkloadCombo};

fn mean_degradation(
    traces: &[std::sync::Arc<gpm::trace::BenchmarkTraces>],
    make: &dyn Fn() -> Box<dyn Policy>,
    budgets: &[f64],
) -> Result<f64, gpm::types::GpmError> {
    let params = SimParams::default();
    let baseline = turbo_baseline(traces, &params)?;
    let mut sum = 0.0;
    for &b in budgets {
        let sim = TraceCmpSim::new(traces.to_vec(), params.clone())?;
        let run = GlobalManager::new().run(sim, &mut *make(), &BudgetSchedule::constant(b))?;
        sum += throughput_degradation(&run, &baseline);
    }
    Ok(sum / budgets.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = TraceStore::new(CaptureConfig::fast_duration(Micros::from_millis(6.0)));
    let budgets = [0.7, 0.8, 0.9];
    let scales: [(usize, Vec<WorkloadCombo>); 3] = [
        (2, combos::two_way_suite()),
        (4, combos::four_way_suite()),
        (8, combos::eight_way_suite()),
    ];

    println!(
        "{:<7} {:>14} {:>14} {:>16}",
        "cores", "MaxBIPS ΔPerf", "Oracle ΔPerf", "ChipWide ΔPerf"
    );
    for (cores, suite) in scales {
        let (mut mb, mut or, mut cw) = (0.0, 0.0, 0.0);
        for combo in &suite {
            let traces = store.combo(combo)?;
            mb += mean_degradation(&traces, &|| Box::new(MaxBips::new()), &budgets)?;
            or += mean_degradation(&traces, &|| Box::new(Oracle::new()), &budgets)?;
            cw += mean_degradation(&traces, &|| Box::new(ChipWide::new()), &budgets)?;
        }
        let n = suite.len() as f64;
        println!(
            "{cores:<7} {:>13.2}% {:>13.2}% {:>15.2}%",
            mb / n * 100.0,
            or / n * 100.0,
            cw / n * 100.0
        );
    }
    println!("\nThe MaxBIPS-oracle gap closes with core count while the chip-wide");
    println!("penalty grows — the paper's Figure 11 trends.");
    Ok(())
}
