//! Quickstart: run the MaxBIPS global power manager on a 4-way CMP under an
//! 83% chip power budget and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{throughput_degradation, turbo_baseline, BudgetSchedule, GlobalManager, MaxBips};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::Micros;
use gpm::workloads::combos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Truncated (~8 ms) benchmark regions keep the example snappy; drop
    // `fast_duration` for full-length runs.
    let store = TraceStore::new(CaptureConfig::fast_duration(Micros::from_millis(8.0)));

    let combo = combos::ammp_mcf_crafty_art();
    println!("capturing per-mode traces for {combo} ...");
    let traces = store.combo(&combo)?;

    // Baseline: everything at full throttle.
    let baseline = turbo_baseline(&traces, &SimParams::default())?;

    // Managed: MaxBIPS under an 83% budget.
    let sim = TraceCmpSim::new(traces, SimParams::default())?;
    let run =
        GlobalManager::new().run(sim, &mut MaxBips::new(), &BudgetSchedule::constant(0.83))?;

    println!("\npolicy        : {}", run.policy);
    println!("chip envelope : {:.1}", run.envelope);
    println!("avg power     : {:.1}", run.average_chip_power());
    println!(
        "budget use    : {:.1}% of the 83% budget",
        run.budget_utilization() * 100.0
    );
    println!("avg throughput: {:.2}", run.average_chip_bips());
    println!(
        "perf cost     : {:.2}% vs all-Turbo",
        throughput_degradation(&run, &baseline) * 100.0
    );
    println!(
        "transitions   : {} explore intervals, {:.1} total stall",
        run.records.len(),
        run.total_stall()
    );

    // Per-core mode dwell summary.
    println!("\nper-core mode dwell (explore intervals):");
    for core in 0..run.benchmarks.len() {
        let id = gpm::types::CoreId::new(core);
        let mut dwell = [0usize; 3];
        for r in &run.records {
            dwell[r.modes.mode(id).index()] += 1;
        }
        println!(
            "  core{core} ({:<7}): Turbo {:>3}  Eff1 {:>3}  Eff2 {:>3}",
            run.benchmarks[core], dwell[0], dwell[1], dwell[2]
        );
    }
    Ok(())
}
