//! The paper's Figure 6 scenario as an operational story: a server's chip
//! runs under a 90% power budget; part of the cooling fails mid-run, the
//! platform drops the budget to 70%, and the MaxBIPS manager re-fits the
//! chip within one explore interval.
//!
//! ```sh
//! cargo run --release --example cooling_failure
//! ```

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{BudgetSchedule, GlobalManager, MaxBips};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::Micros;
use gpm::workloads::combos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = TraceStore::new(CaptureConfig::fast_duration(Micros::from_millis(8.0)));
    let combo = combos::ammp_mcf_crafty_art();
    println!("capturing traces for {combo} ...");
    let traces = store.combo(&combo)?;

    let sim = TraceCmpSim::new(traces, SimParams::default())?;
    let envelope = sim.power_envelope();

    // Budget: 90% until 4 ms, then the cooling alarm drops it to 70%.
    let drop_at = Micros::from_millis(4.0);
    let schedule = BudgetSchedule::steps(vec![(Micros::ZERO, 0.90), (drop_at, 0.70)]);
    let run = GlobalManager::new().run(sim, &mut MaxBips::new(), &schedule)?;

    println!(
        "\nchip envelope {envelope:.1}; budget 90% -> 70% at {:.1} ms\n",
        drop_at.value() / 1000.0
    );
    println!(
        "{:<8} {:>8} {:>9} {:>9}  modes",
        "t[ms]", "budget", "power", "BIPS"
    );
    for r in &run.records {
        println!(
            "{:<8.2} {:>7.1}W {:>8.1}W {:>9.2}  {}{}",
            r.start.value() / 1000.0,
            r.budget.value(),
            r.chip_power.value(),
            r.chip_bips.value(),
            r.modes,
            if r.bootstrap { "  (warm-up)" } else { "" }
        );
    }

    let overshoots = run.overshoot_intervals();
    println!(
        "\nintervals over budget after a decision: {overshoots} \
         (transients are corrected at the next explore time)"
    );
    Ok(())
}
