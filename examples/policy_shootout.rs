//! Compare every built-in policy (plus the oracle and optimistic-static
//! bounds) on a workload combination and budget of your choice.
//!
//! ```sh
//! cargo run --release --example policy_shootout -- "art|mcf" 0.75
//! cargo run --release --example policy_shootout            # defaults
//! ```

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    static_oracle, throughput_degradation, turbo_baseline, weighted_slowdown, BudgetSchedule,
    ChipWide, GlobalManager, GreedyMaxBips, MaxBips, Oracle, Policy, Priority, PullHiPushLo,
};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::{Micros, PowerMode, Watts};
use gpm::workloads::WorkloadCombo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let combo = match args.next() {
        Some(label) => WorkloadCombo::parse(&label)?,
        None => gpm::workloads::combos::ammp_mcf_crafty_art(),
    };
    let budget: f64 = args.next().map_or(Ok(0.8), |s| s.parse())?;
    assert!((0.0..=1.0).contains(&budget), "budget must be in (0, 1]");

    let store = TraceStore::new(CaptureConfig::fast_duration(Micros::from_millis(8.0)));
    println!("capturing traces for {combo} ...");
    let traces = store.combo(&combo)?;
    let params = SimParams::default();
    let baseline = turbo_baseline(&traces, &params)?;
    let schedule = BudgetSchedule::constant(budget);

    println!(
        "\n{combo} at a {:.0}% budget (all-Turbo throughput {:.2}):\n",
        budget * 100.0,
        baseline.average_chip_bips()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10}",
        "policy", "ΔPerf", "w.slowdown", "power/budget", "stall"
    );

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(MaxBips::new()),
        Box::new(GreedyMaxBips::new()),
        Box::new(Priority::new()),
        Box::new(PullHiPushLo::new()),
        Box::new(ChipWide::new()),
        Box::new(Oracle::new()),
    ];
    for mut policy in policies {
        let sim = TraceCmpSim::new(traces.clone(), params.clone())?;
        let run = GlobalManager::new().run(sim, &mut *policy, &schedule)?;
        println!(
            "{:<14} {:>9.2}% {:>11.2}% {:>11.1}% {:>9.1}",
            run.policy,
            throughput_degradation(&run, &baseline) * 100.0,
            weighted_slowdown(&run, &baseline) * 100.0,
            run.budget_utilization() * 100.0,
            run.total_stall()
        );
    }

    // The optimistic-static lower bound (no transitions, oracle choice).
    let envelope: Watts = traces
        .iter()
        .map(|t| t.trace(PowerMode::Turbo).peak_power())
        .sum();
    let turbo_static = static_oracle::all_turbo(&traces)?;
    let static_best = static_oracle::best_or_floor(
        &traces,
        envelope * budget,
        static_oracle::BudgetCriterion::PeakPower,
    )?;
    println!(
        "{:<14} {:>9.2}% {:>11.2}% {:>11.1}%        n/a   (modes {})",
        "Static*",
        static_best.degradation_vs(&turbo_static) * 100.0,
        static_best.weighted_slowdown_vs(&turbo_static) * 100.0,
        static_best.average_power.value() / (envelope.value() * budget) * 100.0,
        static_best.modes,
    );
    println!("\n(* offline optimistic assignment, Section 5.7)");
    Ok(())
}
