//! Implementing your own global power-management policy against the
//! `gpm_core::Policy` trait.
//!
//! The example policy, `SprintAndRest`, alternates a "sprint" phase (spend
//! the whole budget MaxBIPS-style) with a "rest" phase (uniform Eff1) —
//! a toy thermal-smoothing heuristic. It is compared against MaxBIPS.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use gpm::cmp::{SimParams, TraceCmpSim};
use gpm::core::{
    throughput_degradation, turbo_baseline, BudgetSchedule, GlobalManager, MaxBips, Policy,
    PolicyContext,
};
use gpm::trace::{CaptureConfig, TraceStore};
use gpm::types::{Micros, ModeCombination, PowerMode};
use gpm::workloads::combos;

/// Sprint for `sprint_intervals` explore intervals, then rest for
/// `rest_intervals` at uniform Eff1 (if it fits the budget).
struct SprintAndRest {
    sprint_intervals: u32,
    rest_intervals: u32,
    tick: u32,
    inner: MaxBips,
}

impl SprintAndRest {
    fn new(sprint_intervals: u32, rest_intervals: u32) -> Self {
        Self {
            sprint_intervals,
            rest_intervals,
            tick: 0,
            inner: MaxBips::new(),
        }
    }
}

impl Policy for SprintAndRest {
    fn name(&self) -> &str {
        "SprintAndRest"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> ModeCombination {
        let period = self.sprint_intervals + self.rest_intervals;
        let phase = self.tick % period;
        self.tick += 1;
        if phase < self.sprint_intervals {
            // Sprint: delegate to MaxBIPS.
            self.inner.decide(ctx)
        } else {
            // Rest: uniform Eff1 when it fits, else uniform Eff2.
            let cores = ctx.matrices.cores();
            let eff1 = ModeCombination::uniform(cores, PowerMode::Eff1);
            if ctx.matrices.chip_power(&eff1) <= ctx.budget {
                eff1
            } else {
                ModeCombination::uniform(cores, PowerMode::Eff2)
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = TraceStore::new(CaptureConfig::fast_duration(Micros::from_millis(8.0)));
    let combo = combos::facerec_gcc_mesa_vortex();
    println!("capturing traces for {combo} ...");
    let traces = store.combo(&combo)?;
    let params = SimParams::default();
    let baseline = turbo_baseline(&traces, &params)?;
    let schedule = BudgetSchedule::constant(0.8);

    for mut policy in [
        Box::new(MaxBips::new()) as Box<dyn Policy>,
        Box::new(SprintAndRest::new(3, 1)),
    ] {
        let sim = TraceCmpSim::new(traces.clone(), params.clone())?;
        let run = GlobalManager::new().run(sim, &mut *policy, &schedule)?;
        println!(
            "{:<14} ΔPerf {:>6.2}%   power/budget {:>6.1}%",
            run.policy,
            throughput_degradation(&run, &baseline) * 100.0,
            run.budget_utilization() * 100.0,
        );
    }
    println!("\nThe rest phases trade throughput for a smoother power profile —");
    println!("the Policy trait makes heuristics like this a ~30-line experiment.");
    Ok(())
}
